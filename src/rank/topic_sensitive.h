// Topic-Sensitive PageRank — Haveliwala ([10] in the paper).
//
// Offline, one PageRank vector is computed per topic, with the teleport
// distribution restricted to that topic's seed pages. At query time the
// basis vectors are blended with topic weights (e.g. the query's topic
// distribution), yielding a ranking biased toward the query's subject
// without any online PageRank computation — by linearity, the blend
// equals the PageRank personalized on the blended teleport
// distribution.

#ifndef QRANK_RANK_TOPIC_SENSITIVE_H_
#define QRANK_RANK_TOPIC_SENSITIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "rank/pagerank.h"

namespace qrank {

struct TopicSpec {
  std::string name;
  /// Seed pages of the topic; teleportation is uniform over them.
  /// Must be non-empty, ids in range, duplicates ignored.
  std::vector<NodeId> seed_pages;
};

class TopicSensitivePageRank {
 public:
  /// Computes one basis vector per topic (the expensive offline step).
  /// `options.personalization` must be empty — it is derived per topic.
  static Result<TopicSensitivePageRank> Create(
      const CsrGraph& graph, const std::vector<TopicSpec>& topics,
      const PageRankOptions& options = {});

  size_t num_topics() const { return names_.size(); }
  const std::string& topic_name(size_t t) const { return names_[t]; }

  /// The basis PageRank vector of topic `t`.
  const std::vector<double>& BasisVector(size_t t) const {
    return basis_[t];
  }

  /// Query-time blend: scores = sum_t weights[t] * basis[t].
  /// `weights` must have num_topics() non-negative entries with a
  /// positive sum; they are normalized internally.
  Result<std::vector<double>> Blend(const std::vector<double>& weights) const;

 private:
  TopicSensitivePageRank() = default;

  std::vector<std::string> names_;
  std::vector<std::vector<double>> basis_;
};

}  // namespace qrank

#endif  // QRANK_RANK_TOPIC_SENSITIVE_H_
