// Delta PageRank — incremental re-ranking after a small graph change.
//
// Combines two accelerations for the snapshot-series workload:
//  * warm start: iterate from the previous snapshot's converged vector
//    (base.initial_scores) instead of the teleport distribution;
//  * frozen-set iteration, the inverse of adaptive PageRank [11]: where
//    Kamvar et al. freeze pages as they converge, here pages *start*
//    frozen — except the delta's dirty frontier (pages whose in/out
//    links changed, plus new pages) — and are woken on demand. A frozen
//    page is not recomputed on partial sweeps but its value still feeds
//    its out-neighbors; each computed page banks the movement it has not
//    announced downstream and wakes its out-neighbors once the account
//    crosses its share of the drift budget (freeze_threshold *
//    tolerance / n), so perturbations propagate exactly as far as they
//    matter and the aggregate hidden movement is bounded by a fixed
//    fraction of the tolerance. Every full_sweep_period-th iteration
//    recomputes all pages (and a partial sweep whose residual already
//    meets tolerance triggers one immediately) for the exact check.
//
// Exactness contract: convergence is declared ONLY on a full sweep with
// L1 residual below base.tolerance — the same stopping rule as the
// from-scratch engines — so the returned scores match the from-scratch
// fixed point to the same tolerance; the frontier machinery affects
// only how much work each iteration performs. (This is stricter than
// the adaptive engine's all-pages-frozen approximate stop.)
//
// Runs on the deterministic parallel substrate: scores are bit-identical
// for every base.num_threads value (fixed block partitions, fixed-order
// per-row pulls, tree reductions; wake flags are write-only-true, so
// their final state is schedule-independent).

#ifndef QRANK_RANK_DELTA_PAGERANK_H_
#define QRANK_RANK_DELTA_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "rank/pagerank.h"

namespace qrank {

struct DeltaPageRankOptions {
  PageRankOptions base;

  /// Fraction of the tolerance granted as total drift budget. Each page
  /// accumulates the movement it has not yet announced downstream and
  /// wakes its out-neighbors only when the account crosses
  /// freeze_threshold * tolerance / n, so the aggregate hidden movement
  /// is bounded by freeze_threshold * tolerance regardless of iteration
  /// count — convergence to base.tolerance is always reachable — while
  /// pages whose entire perturbation influence stays below their budget
  /// are never recomputed. Must be in (0, 1); larger values freeze more
  /// (cheaper sweeps) but leave less of the tolerance for the moving
  /// part.
  double freeze_threshold = 0.25;

  /// Every full_sweep_period-th iteration recomputes every page;
  /// convergence is only ever declared on such a sweep (one is also
  /// forced as soon as a partial residual drops under tolerance). Full
  /// sweeps are what correct — and propagate, one hop per sweep — the
  /// sub-budget drift that frozen rows accumulate, so stretching the
  /// period trades cheaper iteration for a longer convergence tail at
  /// tight tolerances. Must be >= 1 (1 degenerates to plain warm-started
  /// Jacobi).
  uint32_t full_sweep_period = 8;
};

struct DeltaPageRankResult {
  PageRankResult base;
  /// Page-update operations actually performed; compare against
  /// iterations * num_nodes for the savings.
  uint64_t node_updates = 0;
  /// Pages frozen when iteration stopped.
  uint64_t frozen_at_end = 0;
  /// Movement banked but not yet announced downstream when iteration
  /// stopped (the sum of all per-page drift accounts). The freeze
  /// invariant keeps this strictly under `drift_budget`; the
  /// engine.drift audit validator re-checks exactly that.
  double drift_ledger_total = 0.0;
  /// freeze_threshold * base.tolerance — the aggregate drift the engine
  /// was allowed to hide.
  double drift_budget = 0.0;
};

/// `dirty_frontier` must be empty (= every page dirty; a cold start) or
/// have num_nodes entries, nonzero meaning the page starts unfrozen —
/// typically GraphDelta::DirtyFrontier(). Same option validation as
/// ComputePageRank; an empty graph yields an empty score vector.
Result<DeltaPageRankResult> ComputeDeltaPageRank(
    const CsrGraph& graph, const std::vector<uint8_t>& dirty_frontier,
    const DeltaPageRankOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_DELTA_PAGERANK_H_
