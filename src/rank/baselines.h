// Trivial popularity baselines: raw link counts.
//
// Section 5 of the paper notes the estimator "could just as easily
// substitute the number of links" for PageRank as the popularity measure;
// these baselines make that substitution available everywhere a score
// vector is accepted.

#ifndef QRANK_RANK_BASELINES_H_
#define QRANK_RANK_BASELINES_H_

#include <vector>

#include "graph/csr_graph.h"

namespace qrank {

/// In-degree of every node as a double score vector.
std::vector<double> InDegreeScores(const CsrGraph& graph);

/// In-degree normalized to sum to 1 (a popularity distribution directly
/// comparable to probability-scaled PageRank). All-zero when the graph
/// has no edges.
std::vector<double> NormalizedInDegreeScores(const CsrGraph& graph);

}  // namespace qrank

#endif  // QRANK_RANK_BASELINES_H_
