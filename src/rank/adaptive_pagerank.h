// Adaptive PageRank — Kamvar, Haveliwala & Golub ([11] in the paper).
//
// Observation: most pages' PageRank values converge within a few
// iterations while a small set (typically high-PageRank pages) keeps
// moving. Adaptive power iteration detects per-page convergence and stops
// recomputing converged pages — their frozen values still feed their
// out-neighbors — cutting per-iteration work substantially on power-law
// graphs.
//
// Like the published algorithm, this engine is *approximate*: it also
// stops once every page has individually met the per-page criterion, at
// which point the scores are within O(freeze_threshold / (1 - damping))
// of the exact PageRank vector. Set freeze_threshold well below the
// desired accuracy (e.g. 1e-9 for ~1e-5 L1 accuracy at damping 0.85).

#ifndef QRANK_RANK_ADAPTIVE_PAGERANK_H_
#define QRANK_RANK_ADAPTIVE_PAGERANK_H_

#include "rank/pagerank.h"

namespace qrank {

struct AdaptivePageRankOptions {
  PageRankOptions base;

  /// A page freezes once its per-iteration *relative* change
  /// |x_new - x_old| / x_new drops below this (the source paper's
  /// convergence criterion is per-page and relative). Must be positive.
  double freeze_threshold = 1e-4;

  /// Every `full_sweep_period` iterations all pages are recomputed; a
  /// frozen page whose value has drifted past the threshold wakes up.
  /// This bounds the error a premature freeze can introduce, and global
  /// convergence is only ever declared on a full sweep.
  uint32_t full_sweep_period = 8;
};

struct AdaptivePageRankResult {
  PageRankResult base;
  /// Page-update operations actually performed; compare against
  /// iterations * num_nodes for the savings.
  uint64_t node_updates = 0;
  /// Pages frozen when iteration stopped.
  uint64_t frozen_at_end = 0;
};

/// Same convergence contract as ComputePageRank; the returned scores meet
/// base.tolerance thanks to the terminal full sweeps.
Result<AdaptivePageRankResult> ComputeAdaptivePageRank(
    const CsrGraph& graph, const AdaptivePageRankOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_ADAPTIVE_PAGERANK_H_
