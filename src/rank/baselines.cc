#include "rank/baselines.h"

#include "rank/rank_vector.h"

namespace qrank {

std::vector<double> InDegreeScores(const CsrGraph& graph) {
  std::vector<uint32_t> deg = graph.ComputeInDegrees();
  return std::vector<double>(deg.begin(), deg.end());
}

std::vector<double> NormalizedInDegreeScores(const CsrGraph& graph) {
  std::vector<double> scores = InDegreeScores(graph);
  NormalizeSum(&scores, 1.0);
  return scores;
}

}  // namespace qrank
