#include "rank/solver_flags.h"

namespace qrank {

Status ApplySolverFlags(FlagParser& flags, PageRankOptions* options) {
  const std::string partition =
      flags.GetString("partition", SweepPartitionName(options->partition));
  if (!ParseSweepPartition(partition, &options->partition)) {
    return Status::InvalidArgument("--partition must be node or edge, got '" +
                                   partition + "'");
  }
  const std::string kernel =
      flags.GetString("kernel", KernelVariantName(options->kernel));
  if (!ParseKernelVariant(kernel, &options->kernel)) {
    return Status::InvalidArgument(
        "--kernel must be scalar, simd, avx2 or avx512, got '" + kernel +
        "'");
  }
  options->use_compressed_transpose =
      flags.GetBool("compressed", options->use_compressed_transpose);
  return flags.status();
}

Result<NodeOrdering> OrderingFlag(FlagParser& flags) {
  const std::string order =
      flags.GetString("order", NodeOrderingName(NodeOrdering::kIdentity));
  QRANK_RETURN_NOT_OK(flags.status());
  return ParseNodeOrdering(order);
}

}  // namespace qrank
