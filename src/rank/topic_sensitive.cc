#include "rank/topic_sensitive.h"

#include <cmath>

namespace qrank {

Result<TopicSensitivePageRank> TopicSensitivePageRank::Create(
    const CsrGraph& graph, const std::vector<TopicSpec>& topics,
    const PageRankOptions& options) {
  if (topics.empty()) {
    return Status::InvalidArgument("need at least one topic");
  }
  if (!options.personalization.empty()) {
    return Status::InvalidArgument(
        "options.personalization is derived per topic; leave it empty");
  }
  TopicSensitivePageRank tspr;
  tspr.names_.reserve(topics.size());
  tspr.basis_.reserve(topics.size());
  for (const TopicSpec& topic : topics) {
    if (topic.seed_pages.empty()) {
      return Status::InvalidArgument("topic '" + topic.name +
                                     "' has no seed pages");
    }
    std::vector<double> teleport(graph.num_nodes(), 0.0);
    for (NodeId p : topic.seed_pages) {
      if (p >= graph.num_nodes()) {
        return Status::InvalidArgument("topic '" + topic.name +
                                       "' seed page out of range");
      }
      teleport[p] = 1.0;  // duplicates collapse naturally
    }
    PageRankOptions topic_options = options;
    topic_options.personalization = std::move(teleport);
    QRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                           ComputePageRank(graph, topic_options));
    tspr.names_.push_back(topic.name);
    tspr.basis_.push_back(std::move(pr.scores));
  }
  return tspr;
}

Result<std::vector<double>> TopicSensitivePageRank::Blend(
    const std::vector<double>& weights) const {
  if (weights.size() != basis_.size()) {
    return Status::InvalidArgument("need one weight per topic");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("weights must not all be zero");
  }
  std::vector<double> blended(basis_.front().size(), 0.0);
  for (size_t t = 0; t < basis_.size(); ++t) {
    double w = weights[t] / total;
    if (w == 0.0) continue;
    const std::vector<double>& vec = basis_[t];
    for (size_t i = 0; i < vec.size(); ++i) blended[i] += w * vec[i];
  }
  return blended;
}

}  // namespace qrank
