// HITS — Kleinberg's Hub & Authority metric ([13] in the paper).
//
// Included as the second-generation link-analysis baseline the paper
// compares its lineage against: authority(p) = sum of hub scores linking
// to p; hub(p) = sum of authority scores p links to, iterated to the
// principal singular vectors with L2 normalization.

#ifndef QRANK_RANK_HITS_H_
#define QRANK_RANK_HITS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

struct HitsOptions {
  double tolerance = 1e-10;
  uint32_t max_iterations = 200;
  bool require_convergence = false;
};

struct HitsResult {
  std::vector<double> authority;  // L2-normalized
  std::vector<double> hub;        // L2-normalized
  uint32_t iterations = 0;
  bool converged = false;
  double residual = 0.0;
};

Result<HitsResult> ComputeHits(const CsrGraph& graph,
                               const HitsOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_HITS_H_
