#include "rank/delta_pagerank.h"

#include <atomic>
#include <cmath>
#include <span>

#include "audit/audit.h"
#include "graph/compressed_csr.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "rank/internal.h"
#include "rank/pagerank_kernel.h"
#include "rank/rank_vector.h"

namespace qrank {

using rank_internal::FinishResult;
using rank_internal::TeleportDistribution;
using rank_internal::ValidateOptions;

namespace {

// Per-row outcome of one sweep; written disjointly in the row pass so the
// freeze bookkeeping can run as a separate deterministic pass. Rows that
// were skipped (frozen on a partial sweep) keep a stale status — the
// freeze pass identifies them through `frozen` instead, so the row pass
// never writes O(n) bytes for them.
enum RowStatus : uint8_t {
  kConverged = 0,  // recomputed, drift account still under budget
  kMoved = 1,      // recomputed, crossed the budget: announce downstream
};

}  // namespace

Result<DeltaPageRankResult> ComputeDeltaPageRank(
    const CsrGraph& graph, const std::vector<uint8_t>& dirty_frontier,
    const DeltaPageRankOptions& options) {
  QRANK_RETURN_NOT_OK(ValidateOptions(graph, options.base));
  if (options.freeze_threshold <= 0.0 || options.freeze_threshold >= 1.0) {
    return Status::InvalidArgument("freeze_threshold must be in (0, 1)");
  }
  if (options.full_sweep_period == 0) {
    return Status::InvalidArgument("full_sweep_period must be >= 1");
  }
  const NodeId n = graph.num_nodes();
  if (!dirty_frontier.empty() && dirty_frontier.size() != n) {
    return Status::InvalidArgument(
        "dirty_frontier must be empty or have num_nodes entries");
  }

  DeltaPageRankResult result;
  result.drift_budget = options.freeze_threshold * options.base.tolerance;
  if (n == 0) {
    result.base.converged = true;
    return result;
  }

  const double alpha = options.base.damping;
  const std::vector<double> v = TeleportDistribution(graph, options.base);
  std::vector<double> x = rank_internal::InitialIterate(options.base, v);

  graph.BuildTranspose();
  ParallelOptions par;
  par.num_threads = options.base.num_threads;

  // Per-row pulls run the dispatched fold shared with the batch kernel
  // (rank/sweep_ops.h): same 4-accumulator oracle for scalar, same
  // bit-exactness/tolerance story per variant, and the compressed
  // transpose plugs in per options.base.use_compressed_transpose.
  const rank_internal::SweepFuncs sweep_funcs =
      rank_internal::ResolveSweepFuncs(
          rank_internal::KernelVariantLevel(options.base.kernel));
  const bool pull_compressed = options.base.use_compressed_transpose;
  const uint64_t* row_bytes_off = nullptr;
  const uint8_t* row_bytes = nullptr;
  if (pull_compressed) {
    const CompressedCsr& compressed = graph.BuildCompressedTranspose();
    row_bytes_off = compressed.byte_offsets().data();
    row_bytes = compressed.bytes().data();
  }

  // Fixed row partition shared by every pass and reduce of the solve
  // (edge-balanced by default, so the hub blocks of a power-law graph
  // don't serialize the sweep), plus one reduce-scratch buffer grown
  // once — the iteration loop below performs no allocations.
  const std::vector<size_t> bounds =
      rank_internal::PullSweepBoundaries(graph, options.base.partition,
                                         par.grain);
  std::vector<double> reduce_scratch;

  std::vector<double> inv_outdeg(n, 0.0);
  bool has_dangling = false;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t d = graph.OutDegree(u);
    if (d > 0) {
      inv_outdeg[u] = 1.0 / static_cast<double>(d);
    } else {
      has_dangling = true;
    }
  }

  // Per-row drift budget. A computed row accumulates its un-announced
  // movement in `slack`; only when the accumulation crosses the budget
  // does it count as "moved" (waking its out-neighbors and resetting the
  // account). The total movement ever hidden from downstream rows is
  // therefore bounded by n * budget = freeze_threshold * tolerance,
  // independent of iteration count or spectral gap — so full-sweep
  // residuals can always reach tolerance and no stall is possible —
  // while a page whose entire perturbation influence stays below its
  // budget never wakes at all, which is where the savings come from.
  const double budget = options.freeze_threshold * options.base.tolerance /
                        static_cast<double>(n);
  std::vector<double> slack(n, 0.0);

  // An empty frontier means "everything dirty": a cold start.
  std::vector<uint8_t> frozen(n, 0);
  if (!dirty_frontier.empty()) {
    for (NodeId i = 0; i < n; ++i) frozen[i] = dirty_frontier[i] ? 0 : 1;
  }
  std::vector<uint8_t> status(n, kMoved);
  std::vector<uint8_t> woken(n, 0);

  // The share a page pushes to each out-neighbor. Kept persistent and
  // refreshed only for recomputed rows (a frozen page's share is frozen
  // with it), so partial sweeps cost O(awake), not O(n).
  std::vector<double> out_share(n, 0.0);
  ParallelForPartition(
      bounds,
      [&](size_t lo, size_t hi) {
        for (size_t u = lo; u < hi; ++u) out_share[u] = x[u] * inv_outdeg[u];
      },
      par);

  auto exact_dangling = [&](const std::vector<double>& scores) {
    if (!has_dangling) return 0.0;
    return ParallelReducePartition<1>(
        bounds,
        [&](size_t lo, size_t hi) {
          double sum = 0.0;
          for (size_t u = lo; u < hi; ++u) {
            if (inv_outdeg[u] == 0.0) sum += scores[u];
          }
          return std::array<double, 1>{sum};
        },
        &reduce_scratch, par)[0];
  };

  // Dangling mass (footnote 2), redistributed teleport-shaped. Tracked
  // incrementally on partial sweeps (tree-reduced deltas of recomputed
  // dangling rows: deterministic); recomputed exactly on full sweeps, so
  // the convergence check always evaluates the true operator.
  double dangling = exact_dangling(x);
  // Pre-overwrite values of recomputed dangling rows, for that tracking.
  std::vector<double> old_dangling(has_dangling ? n : 0, 0.0);

  // One full Jacobi update of row i, written back in place: pulls read
  // `out_share` (refreshed only after the sweep), never `x`, so the
  // in-place write is still a Jacobi step and the pull order is the
  // fixed ascending in-neighbor order — iterates are bit-identical
  // across thread counts.
  auto update_row = [&](size_t i, double base_mass) {
    double pull;
    if (pull_compressed) {
      pull = sweep_funcs.compressed_row_pull(row_bytes + row_bytes_off[i],
                                             row_bytes + row_bytes_off[i + 1],
                                             out_share.data());
    } else {
      const std::span<const NodeId> in =
          graph.InNeighbors(static_cast<NodeId>(i));
      pull = sweep_funcs.row_pull(in.data(), in.size(), out_share.data());
    }
    const double val = base_mass * v[i] + alpha * pull;
    const double delta = std::fabs(val - x[i]);
    if (has_dangling && inv_outdeg[i] == 0.0) old_dangling[i] = x[i];
    x[i] = val;
    return delta;
  };

  // A partial-sweep residual below tolerance means the awake set has
  // converged; schedule a full sweep immediately (rather than waiting
  // for the period boundary) to run the exact convergence check.
  bool force_full_sweep = false;
  for (uint32_t iter = 1; iter <= options.base.max_iterations; ++iter) {
    const bool full_sweep =
        (iter % options.full_sweep_period == 0) || force_full_sweep;
    if (full_sweep) dangling = exact_dangling(x);
    const double base_mass = 1.0 - alpha + alpha * dangling;

    // Row pass, fused with the residual reduction (a tree reduce, so the
    // sum is schedule-independent): frozen rows are skipped outright on
    // partial sweeps. The update count is an exact integer, so a relaxed
    // atomic add per block keeps it deterministic too.
    std::atomic<uint64_t> updates{0};
    result.base.residual = ParallelReducePartition<1>(
        bounds,
        [&](size_t lo, size_t hi) {
          double sum = 0.0;
          uint64_t count = 0;
          for (size_t i = lo; i < hi; ++i) {
            if (frozen[i] && !full_sweep) continue;
            const double delta = update_row(i, base_mass);
            sum += delta;
            ++count;
            slack[i] += delta;
            if (slack[i] >= budget) {
              status[i] = kMoved;
              slack[i] = 0.0;
              // Wake pass, fused: a moved page's out-neighbors see a
              // changed share x/c next iteration, so they must be
              // recomputed. woken[] is all-zero at row-pass entry and
              // only `1` is ever written (relaxed atomics; nothing reads
              // it until the freeze pass), so the final flags are
              // schedule-independent.
              for (NodeId w : graph.OutNeighbors(static_cast<NodeId>(i))) {
                std::atomic_ref<uint8_t>(woken[w]).store(
                    1, std::memory_order_relaxed);
              }
            } else {
              status[i] = kConverged;
            }
          }
          updates.fetch_add(count, std::memory_order_relaxed);
          return std::array<double, 1>{sum};
        },
        &reduce_scratch, par)[0];
    result.node_updates += updates.load(std::memory_order_relaxed);
    if (has_dangling && !full_sweep) {
      dangling += ParallelReducePartition<1>(
          bounds,
          [&](size_t lo, size_t hi) {
            double sum = 0.0;
            for (size_t i = lo; i < hi; ++i) {
              if (!frozen[i] && inv_outdeg[i] == 0.0) {
                sum += x[i] - old_dangling[i];
              }
            }
            return std::array<double, 1>{sum};
          },
          &reduce_scratch, par)[0];
    }

    // Freeze update, woken reset, and out_share refresh for recomputed
    // rows: a page stays/becomes frozen iff it did not cross its budget
    // and no in-neighbor woke it. Rows skipped this sweep only need a
    // write when someone woke them, so the steady-state cost is reads.
    ParallelForPartition(
        bounds,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            if (frozen[i] && !full_sweep) {  // skipped this sweep
              if (woken[i]) {
                frozen[i] = 0;
                woken[i] = 0;
              }
              continue;
            }
            frozen[i] = (status[i] != kMoved) && !woken[i];
            woken[i] = 0;
            out_share[i] = x[i] * inv_outdeg[i];
          }
        },
        par);

    result.base.iterations = iter;
    // Exactness contract: only a full sweep measures the true residual
    // ||F(x) - x||_1; partial-sweep residuals ignore frozen rows.
    if (full_sweep && result.base.residual < options.base.tolerance) {
      result.base.converged = true;
      break;
    }
    force_full_sweep = result.base.residual < options.base.tolerance;
  }

  // Iterations exhausted between full sweeps: run one final full update
  // so the reported residual is honest.
  if (!result.base.converged) {
    dangling = exact_dangling(x);
    const double base_mass = 1.0 - alpha + alpha * dangling;
    ParallelForPartition(
        bounds,
        [&](size_t lo, size_t hi) {
          for (size_t u = lo; u < hi; ++u) out_share[u] = x[u] * inv_outdeg[u];
        },
        par);
    result.base.residual = ParallelReducePartition<1>(
        bounds,
        [&](size_t lo, size_t hi) {
          double sum = 0.0;
          for (size_t i = lo; i < hi; ++i) sum += update_row(i, base_mass);
          return std::array<double, 1>{sum};
        },
        &reduce_scratch, par)[0];
    result.node_updates += n;
    if (result.base.residual < options.base.tolerance) {
      result.base.converged = true;
    }
  }

  for (NodeId i = 0; i < n; ++i) {
    if (frozen[i]) ++result.frozen_at_end;
  }
  // Expose the drift ledger: every page's account is strictly under its
  // budget/n share (crossing it resets the account to zero and wakes the
  // out-neighbors), so the total must come in under the aggregate
  // budget. This is the invariant the exactness contract rests on.
  for (NodeId i = 0; i < n; ++i) result.drift_ledger_total += slack[i];
  QRANK_AUDIT1(result.drift_ledger_total <=
               result.drift_budget * (1.0 + 1e-9))
      << "drift ledger " << result.drift_ledger_total
      << " overran its budget " << result.drift_budget;
  // Frozen rows break Jacobi's automatic mass conservation; restore the
  // probability scale before applying the requested convention.
  NormalizeSum(&x, 1.0);
  result.base.scores = std::move(x);
  QRANK_RETURN_NOT_OK(FinishResult(graph, options.base, &result.base));
  if constexpr (QRANK_AUDIT_LEVEL >= 2) {
    // Declared convergence came from a full sweep, so the scores are one
    // exact Jacobi application away from residual < tolerance; the final
    // renormalization can shift them by at most the hidden drift, which
    // the inflated tolerance below accounts for.
    if (result.base.converged && options.base.personalization.empty()) {
      AuditContext ctx;
      ctx.graph = &graph;
      ctx.scores = &result.base.scores;
      ctx.damping = options.base.damping;
      ctx.tolerance =
          options.base.tolerance * (1.0 + options.freeze_threshold);
      ctx.declared_converged = true;
      ctx.drift_ledger_total = result.drift_ledger_total;
      ctx.drift_budget = result.drift_budget;
      const Result<AuditReport> audit =
          RunAuditValidator("engine.residual", ctx);
      QRANK_CHECK(audit.ok() && audit.value().ok())
          << "declared-converged delta scores fail the fixed-point "
          << "re-check: "
          << (audit.ok() ? audit.value().ToString()
                         : audit.status().ToString());
      const Result<AuditReport> drift = RunAuditValidator("engine.drift",
                                                          ctx);
      QRANK_CHECK(drift.ok() && drift.value().ok())
          << "drift ledger audit failed: "
          << (drift.ok() ? drift.value().ToString()
                         : drift.status().ToString());
    }
  }
  return result;
}

}  // namespace qrank
