#include "rank/pagerank_kernel.h"

#include <cmath>
#include <limits>

#include "common/annotations.h"

#include "rank/sweep_impl.h"

namespace qrank {
namespace rank_internal {

namespace {

// The oracle fold every SIMD variant is measured against: four
// accumulators break the serial FP-add dependency chain so the gathers
// overlap; the fold order depends only on the row's in-degree, never on
// the partition, keeping scores bit-identical across thread counts.
struct ScalarAcc {
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;

  void Accumulate(const NodeId* src, size_t count, const double* share) {
    size_t k = 0;
    for (; k + 4 <= count; k += 4) {
      p0 += share[src[k]];
      p1 += share[src[k + 1]];
      p2 += share[src[k + 2]];
      p3 += share[src[k + 3]];
    }
    for (; k < count; ++k) p0 += share[src[k]];
  }

  double Fold() const { return (p0 + p1) + (p2 + p3); }
};

}  // namespace

// This TU is compiled without any -m ISA flags, so the row update here
// keeps the plain mul-then-add rounding; every variant's
// compressed_block points at this one definition (sweep_ops.h). The
// QRANK_SCALAR_TU_ONLY marker turns that comment into a build-breaking
// lint rule: qrank_lint cross-checks this TU's compile command for
// -mavx*/-ffast-math.
QRANK_SCALAR_TU_ONLY QRANK_HOT std::array<double, 2>
ScalarCompressedBlockSweep(const SweepArgs& args, size_t lo, size_t hi) {
  return BlockSweep<ScalarAcc, /*kCompressed=*/true>(args, lo, hi);
}

// Defined in the per-ISA translation units; declared here (not in a
// shared header) so no other TU can reach them without going through
// ResolveSweepFuncs.
#if defined(QRANK_HAVE_AVX2)
SweepFuncs Avx2SweepFuncs();
#endif
#if defined(QRANK_HAVE_AVX512)
SweepFuncs Avx512SweepFuncs();
#endif

SweepFuncs ResolveSweepFuncs(SimdLevel requested) {
  SimdLevel level = DetectSimdLevel();
  if (requested < level) level = requested;
#if defined(QRANK_HAVE_AVX512)
  if (level == SimdLevel::kAvx512) return Avx512SweepFuncs();
#endif
#if defined(QRANK_HAVE_AVX2)
  if (level >= SimdLevel::kAvx2) return Avx2SweepFuncs();
#endif
  return MakeSweepFuncs<ScalarAcc>(SimdLevel::kScalar);
}

SimdLevel KernelVariantLevel(KernelVariant variant) {
  SimdLevel requested = SimdLevel::kScalar;
  switch (variant) {
    case KernelVariant::kScalar:
      requested = SimdLevel::kScalar;
      break;
    case KernelVariant::kAvx2:
      requested = SimdLevel::kAvx2;
      break;
    case KernelVariant::kAvx512:
      requested = SimdLevel::kAvx512;
      break;
    case KernelVariant::kSimd:
      requested = SimdLevel::kAvx512;  // best available
      break;
  }
  const SimdLevel detected = DetectSimdLevel();
  return requested < detected ? requested : detected;
}

std::vector<size_t> PullSweepBoundaries(const CsrGraph& graph,
                                        SweepPartition partition,
                                        size_t grain) {
  const size_t n = graph.num_nodes();
  if (grain == 0) grain = 1;
  if (partition == SweepPartition::kNodeBalanced) {
    return UniformBoundaries(n, grain);
  }
  // Row i costs one gather per in-edge plus constant row work: weight
  // in_degree(i) + 1, prefix w[i] = in_offsets[i] + i. Same block count
  // as the uniform partition, so only the boundaries move.
  const std::span<const size_t> in_off = graph.in_offsets();
  std::vector<size_t> prefix(n + 1);
  for (size_t i = 0; i <= n; ++i) prefix[i] = in_off[i] + i;
  return WeightBalancedBoundaries(prefix, NumBlocks(n, grain));
}

PageRankKernel::PageRankKernel(const CsrGraph& graph,
                               const PageRankOptions& options,
                               const std::vector<double>& teleport,
                               std::vector<double> initial)
    : n_(graph.num_nodes()),
      alpha_(options.damping),
      v_(teleport),
      x_(std::move(initial)) {
  par_.num_threads = options.num_threads;
  graph.BuildTranspose();
  in_offsets_ = graph.in_offsets();
  in_sources_ = graph.in_sources();
  bounds_ = PullSweepBoundaries(graph, options.partition, par_.grain);

  // i32 gathers index with signed 32-bit lanes; ids past 2^31 would go
  // negative, so such graphs (none today — NodeId is u32 and real
  // inputs stay far below) pin the scalar path.
  SimdLevel requested = KernelVariantLevel(options.kernel);
  if (n_ > static_cast<NodeId>(std::numeric_limits<int32_t>::max())) {
    requested = SimdLevel::kScalar;
  }
  funcs_ = ResolveSweepFuncs(requested);
  compressed_ = options.use_compressed_transpose;
  if (compressed_) {
    const CompressedCsr& c = graph.BuildCompressedTranspose();
    byte_offsets_ = c.byte_offsets().data();
    bytes_ = c.bytes().data();
    block_fn_ = funcs_.compressed_block;
  } else {
    block_fn_ = funcs_.raw_block;
  }

  inv_outdeg_.assign(n_, 0.0);
  for (NodeId u = 0; u < n_; ++u) {
    const uint32_t d = graph.OutDegree(u);
    if (d > 0) inv_outdeg_[u] = 1.0 / static_cast<double>(d);
  }

  next_.assign(n_, 0.0);
  out_share_.assign(n_, 0.0);
  next_out_share_.assign(n_, 0.0);
  const size_t blocks = bounds_.empty() ? 0 : bounds_.size() - 1;
  reduce_scratch_.assign(2 * blocks, 0.0);

  // Seed the sweep-carried state from the initial iterate: out-shares
  // and the dangling sum every later sweep gets for free from its
  // predecessor's fused pass.
  const std::array<double, 1> seeded = ParallelReducePartition<1>(
      bounds_,
      [&](size_t lo, size_t hi) {
        double dangling = 0.0;
        for (size_t u = lo; u < hi; ++u) {
          out_share_[u] = x_[u] * inv_outdeg_[u];
          if (inv_outdeg_[u] == 0.0) dangling += x_[u];
        }
        return std::array<double, 1>{dangling};
      },
      &reduce_scratch_, par_);
  dangling_ = seeded[0];
}

QRANK_HOT double PageRankKernel::Sweep() {
  SweepArgs args;
  args.in_off = in_offsets_.data();
  args.in_src = in_sources_.data();
  args.byte_off = byte_offsets_;
  args.bytes = bytes_;
  args.x = x_.data();
  args.v = v_.data();
  args.out_share = out_share_.data();
  args.inv_outdeg = inv_outdeg_.data();
  args.next = next_.data();
  args.next_out_share = next_out_share_.data();
  args.alpha = alpha_;
  args.base_weight = 1.0 - alpha_ + alpha_ * dangling_;

  const BlockSweepFn block = block_fn_;
  const std::array<double, 2> sums = ParallelReducePartition<2>(
      bounds_,
      [&args, block](size_t lo, size_t hi) { return block(args, lo, hi); },
      &reduce_scratch_, par_);

  x_.swap(next_);
  out_share_.swap(next_out_share_);
  dangling_ = sums[1];
  return sums[0];
}

}  // namespace rank_internal
}  // namespace qrank
