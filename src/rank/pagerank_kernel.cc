#include "rank/pagerank_kernel.h"

#include <cmath>

namespace qrank {
namespace rank_internal {

std::vector<size_t> PullSweepBoundaries(const CsrGraph& graph,
                                        SweepPartition partition,
                                        size_t grain) {
  const size_t n = graph.num_nodes();
  if (grain == 0) grain = 1;
  if (partition == SweepPartition::kNodeBalanced) {
    return UniformBoundaries(n, grain);
  }
  // Row i costs one gather per in-edge plus constant row work: weight
  // in_degree(i) + 1, prefix w[i] = in_offsets[i] + i. Same block count
  // as the uniform partition, so only the boundaries move.
  const std::span<const size_t> in_off = graph.in_offsets();
  std::vector<size_t> prefix(n + 1);
  for (size_t i = 0; i <= n; ++i) prefix[i] = in_off[i] + i;
  return WeightBalancedBoundaries(prefix, NumBlocks(n, grain));
}

PageRankKernel::PageRankKernel(const CsrGraph& graph,
                               const PageRankOptions& options,
                               const std::vector<double>& teleport,
                               std::vector<double> initial)
    : n_(graph.num_nodes()),
      alpha_(options.damping),
      v_(teleport),
      x_(std::move(initial)) {
  par_.num_threads = options.num_threads;
  graph.BuildTranspose();
  in_offsets_ = graph.in_offsets();
  in_sources_ = graph.in_sources();
  bounds_ = PullSweepBoundaries(graph, options.partition, par_.grain);

  inv_outdeg_.assign(n_, 0.0);
  for (NodeId u = 0; u < n_; ++u) {
    const uint32_t d = graph.OutDegree(u);
    if (d > 0) inv_outdeg_[u] = 1.0 / static_cast<double>(d);
  }

  next_.assign(n_, 0.0);
  out_share_.assign(n_, 0.0);
  next_out_share_.assign(n_, 0.0);
  const size_t blocks = bounds_.empty() ? 0 : bounds_.size() - 1;
  reduce_scratch_.assign(2 * blocks, 0.0);

  // Seed the sweep-carried state from the initial iterate: out-shares
  // and the dangling sum every later sweep gets for free from its
  // predecessor's fused pass.
  const std::array<double, 1> seeded = ParallelReducePartition<1>(
      bounds_,
      [&](size_t lo, size_t hi) {
        double dangling = 0.0;
        for (size_t u = lo; u < hi; ++u) {
          out_share_[u] = x_[u] * inv_outdeg_[u];
          if (inv_outdeg_[u] == 0.0) dangling += x_[u];
        }
        return std::array<double, 1>{dangling};
      },
      &reduce_scratch_, par_);
  dangling_ = seeded[0];
}

double PageRankKernel::Sweep() {
  const double base_weight = 1.0 - alpha_ + alpha_ * dangling_;
  const double alpha = alpha_;
  const size_t* in_off = in_offsets_.data();
  const NodeId* in_src = in_sources_.data();
  const double* x = x_.data();
  const double* v = v_.data();
  const double* out_share = out_share_.data();
  const double* inv_outdeg = inv_outdeg_.data();
  double* next = next_.data();
  double* next_out_share = next_out_share_.data();

  const std::array<double, 2> sums = ParallelReducePartition<2>(
      bounds_,
      [&](size_t lo, size_t hi) {
        double residual = 0.0;
        double next_dangling = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          // Four accumulators break the serial FP-add dependency chain so
          // the gathers overlap; the fold order depends only on the row's
          // in-degree, never on the partition, keeping scores bit-identical
          // across thread counts.
          double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
          size_t k = in_off[i];
          const size_t end = in_off[i + 1];
          for (; k + 4 <= end; k += 4) {
            p0 += out_share[in_src[k]];
            p1 += out_share[in_src[k + 1]];
            p2 += out_share[in_src[k + 2]];
            p3 += out_share[in_src[k + 3]];
          }
          for (; k < end; ++k) p0 += out_share[in_src[k]];
          const double pull = (p0 + p1) + (p2 + p3);
          const double fresh = base_weight * v[i] + alpha * pull;
          residual += std::fabs(fresh - x[i]);
          if (inv_outdeg[i] == 0.0) next_dangling += fresh;
          next[i] = fresh;
          next_out_share[i] = fresh * inv_outdeg[i];
        }
        return std::array<double, 2>{residual, next_dangling};
      },
      &reduce_scratch_, par_);

  x_.swap(next_);
  out_share_.swap(next_out_share_);
  dangling_ = sums[1];
  return sums[0];
}

}  // namespace rank_internal
}  // namespace qrank
