#include "rank/adaptive_pagerank.h"

#include <algorithm>
#include <cmath>

#include "rank/internal.h"
#include "rank/rank_vector.h"

namespace qrank {

using rank_internal::FinishResult;
using rank_internal::TeleportDistribution;
using rank_internal::ValidateOptions;

Result<AdaptivePageRankResult> ComputeAdaptivePageRank(
    const CsrGraph& graph, const AdaptivePageRankOptions& options) {
  QRANK_RETURN_NOT_OK(ValidateOptions(graph, options.base));
  if (options.freeze_threshold <= 0.0) {
    return Status::InvalidArgument("freeze_threshold must be positive");
  }
  if (options.full_sweep_period == 0) {
    return Status::InvalidArgument("full_sweep_period must be >= 1");
  }

  const NodeId n = graph.num_nodes();
  AdaptivePageRankResult result;
  if (n == 0) {
    result.base.converged = true;
    return result;
  }

  const double alpha = options.base.damping;
  const std::vector<double> v = TeleportDistribution(graph, options.base);

  // Cached transpose, shared across engines on this graph — no O(E)
  // private copy.
  graph.BuildTranspose();
  std::vector<double> inv_outdeg(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    uint32_t d = graph.OutDegree(u);
    if (d > 0) inv_outdeg[u] = 1.0 / static_cast<double>(d);
  }

  std::vector<double> x = v;
  std::vector<double> next = x;
  std::vector<bool> frozen(n, false);

  for (uint32_t iter = 1; iter <= options.base.max_iterations; ++iter) {
    const bool full_sweep = (iter % options.full_sweep_period == 0);
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (inv_outdeg[u] == 0.0) dangling += x[u];
    }
    const double teleport_mass = 1.0 - alpha + alpha * dangling;

    double residual = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      if (frozen[i] && !full_sweep) {
        next[i] = x[i];
        continue;
      }
      double pull = 0.0;
      for (NodeId u : graph.InNeighbors(i)) {
        pull += x[u] * inv_outdeg[u];
      }
      double fresh = teleport_mass * v[i] + alpha * pull;
      double delta = std::fabs(fresh - x[i]);
      residual += delta;
      next[i] = fresh;
      ++result.node_updates;
      // Relative per-page convergence; fresh > 0 whenever damping < 1.
      if (fresh > 0.0 && delta / fresh < options.freeze_threshold) {
        frozen[i] = true;
      } else if (full_sweep) {
        frozen[i] = false;  // page woke back up; resume updating it
      }
    }
    x.swap(next);
    result.base.residual = residual;
    result.base.iterations = iter;
    // Only trust global convergence on a full sweep: frozen pages
    // contributed no residual on partial sweeps.
    if (full_sweep && residual < options.base.tolerance) {
      result.base.converged = true;
      break;
    }
    // Approximate convergence (the source algorithm's stopping rule):
    // every page individually met the per-page criterion. The result is
    // within O(freeze_threshold / (1 - damping)) of the exact vector.
    if (full_sweep &&
        std::all_of(frozen.begin(), frozen.end(), [](bool f) { return f; })) {
      result.base.converged = true;
      break;
    }
  }

  // If the loop exhausted iterations right before a scheduled full sweep,
  // run one final full update to obtain an honest residual.
  if (!result.base.converged) {
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (inv_outdeg[u] == 0.0) dangling += x[u];
    }
    const double teleport_mass = 1.0 - alpha + alpha * dangling;
    double residual = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      double pull = 0.0;
      for (NodeId u : graph.InNeighbors(i)) {
        pull += x[u] * inv_outdeg[u];
      }
      double fresh = teleport_mass * v[i] + alpha * pull;
      residual += std::fabs(fresh - x[i]);
      next[i] = fresh;
      ++result.node_updates;
    }
    x.swap(next);
    result.base.residual = residual;
    if (residual < options.base.tolerance) result.base.converged = true;
  }

  for (NodeId i = 0; i < n; ++i) {
    if (frozen[i]) ++result.frozen_at_end;
  }
  NormalizeSum(&x, 1.0);
  result.base.scores = std::move(x);
  QRANK_RETURN_NOT_OK(FinishResult(graph, options.base, &result.base));
  return result;
}

}  // namespace qrank
