// Quadratic extrapolation for accelerating PageRank — Kamvar,
// Haveliwala, Manning & Golub ([12] in the paper).
//
// Power iteration converges at rate |lambda_2| (= damping for PageRank).
// Quadratic extrapolation periodically treats the current iterate as a
// linear combination of the first three eigenvectors, estimates and
// subtracts the second/third eigenvector components from four successive
// iterates, and restarts the iteration from the cleaned vector —
// typically a 25-60% wall-clock reduction at tight tolerances.

#ifndef QRANK_RANK_EXTRAPOLATION_H_
#define QRANK_RANK_EXTRAPOLATION_H_

#include "rank/pagerank.h"

namespace qrank {

struct ExtrapolatedPageRankOptions {
  PageRankOptions base;

  /// Apply one extrapolation step every `period` power iterations
  /// (the source paper recommends infrequent application; >= 4).
  uint32_t period = 10;

  /// First iteration at which extrapolation may fire (needs 4 iterates).
  uint32_t warmup = 4;
};

struct ExtrapolatedPageRankResult {
  PageRankResult base;
  /// Number of extrapolation steps actually applied (skipped steps —
  /// singular least-squares systems — do not count).
  uint32_t extrapolations_applied = 0;
};

/// Same contract as ComputePageRank.
Result<ExtrapolatedPageRankResult> ComputeExtrapolatedPageRank(
    const CsrGraph& graph, const ExtrapolatedPageRankOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_EXTRAPOLATION_H_
