#include "rank/traffic_rank.h"

#include <algorithm>
#include <cmath>

namespace qrank {

Result<TrafficRankResult> ComputeTrafficRank(
    const CsrGraph& graph, const TrafficRankOptions& options) {
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options.update_damping <= 0.0 || options.update_damping > 1.0) {
    return Status::InvalidArgument("update_damping must be in (0, 1]");
  }

  const NodeId n = graph.num_nodes();
  TrafficRankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Cached transpose, shared across engines on this graph — no O(E)
  // private copy.
  graph.BuildTranspose();
  // beta[0..n) are real pages; beta[n] is the virtual world page that
  // links to and from every real page.
  std::vector<double> beta(static_cast<size_t>(n) + 1, 1.0);
  std::vector<double> fresh(static_cast<size_t>(n) + 1, 1.0);
  const double gamma = options.update_damping;

  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    double sum_beta_real = 0.0;
    double sum_inv_beta_real = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      sum_beta_real += beta[i];
      sum_inv_beta_real += 1.0 / beta[i];
    }

    // Real pages.
    for (NodeId j = 0; j < n; ++j) {
      double out_sum = beta[n];  // virtual out-edge j -> world
      for (NodeId k : graph.OutNeighbors(j)) out_sum += beta[k];
      double in_sum = 1.0 / beta[n];  // virtual in-edge world -> j
      for (NodeId i : graph.InNeighbors(j)) in_sum += 1.0 / beta[i];
      double target = std::sqrt(out_sum / in_sum);
      fresh[j] = gamma >= 1.0
                     ? target
                     : std::pow(beta[j], 1.0 - gamma) *
                           std::pow(target, gamma);
    }
    // Virtual page.
    {
      double target = std::sqrt(sum_beta_real / sum_inv_beta_real);
      fresh[n] = gamma >= 1.0 ? target
                              : std::pow(beta[n], 1.0 - gamma) *
                                    std::pow(target, gamma);
    }

    // Gauge fix: the flow depends only on beta ratios; pin the virtual
    // page's multiplier at 1 to remove the scale freedom.
    double scale = 1.0 / fresh[n];
    double residual = 0.0;
    for (size_t i = 0; i <= n; ++i) {
      fresh[i] *= scale;
      residual = std::max(residual,
                          std::fabs(fresh[i] / beta[i] - 1.0));
    }
    beta.swap(fresh);
    result.residual = residual;
    result.iterations = iter;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  if (!result.converged && options.require_convergence) {
    return Status::NotConverged("TrafficRank balancing did not converge");
  }

  // Edge flows f_ij = beta_j / beta_i over real + virtual edges.
  double total_flow = 0.0;
  std::vector<double> through(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    double inv_beta_i = 1.0 / beta[i];
    for (NodeId j : graph.OutNeighbors(i)) {
      double f = beta[j] * inv_beta_i;
      through[j] += f;
      total_flow += f;
    }
    // world -> i and i -> world.
    double f_in = beta[i] / beta[n];
    through[i] += f_in;
    total_flow += f_in;
    total_flow += beta[n] * inv_beta_i;  // flows into the virtual page
  }

  result.traffic.resize(n);
  result.scores.resize(n);
  double real_total = 0.0;
  for (NodeId j = 0; j < n; ++j) {
    result.traffic[j] = through[j] / total_flow;
    real_total += result.traffic[j];
  }
  if (real_total > 0.0) {
    for (NodeId j = 0; j < n; ++j) {
      result.scores[j] = result.traffic[j] / real_total;
    }
  }
  return result;
}

}  // namespace qrank
