// AVX2 pull-sweep variant. Compiled with -mavx2 only when the
// toolchain supports it (QRANK_SIMD in CMake); the resolver in
// pagerank_kernel.cc never hands these functions out unless the CPU
// reports AVX2, so no illegal instruction can execute on older parts.
//
// Bit-exactness: the accumulator keeps the scalar fold's p0..p3 as the
// four lanes of one __m256d. The main loop gathers four shares per step
// (_mm256_i32gather_pd) and adds lane-wise — per lane, the identical
// IEEE add sequence the scalar variant runs. The < 4 remainder is added
// into lane 0 sequentially, exactly like the scalar remainder loop into
// p0, and Fold() is the same (p0 + p1) + (p2 + p3). Scores are
// therefore bit-identical to the scalar oracle (asserted by
// tests/rank/simd_equivalence_test.cc).

#if defined(QRANK_HAVE_AVX2)

#include <immintrin.h>

#include "rank/sweep_impl.h"

namespace qrank {
namespace rank_internal {
namespace {

struct Avx2Acc {
  __m256d acc = _mm256_setzero_pd();

  void Accumulate(const NodeId* src, size_t count, const double* share) {
    // Mask-form gather with an explicit zero source: GCC implements the
    // unmasked _mm256_i32gather_pd through _mm256_undefined_pd(), whose
    // deliberately uninitialized dummy trips -Wuninitialized.
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    size_t k = 0;
    for (; k + 4 <= count; k += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + k));
      acc = _mm256_add_pd(
          acc, _mm256_mask_i32gather_pd(_mm256_setzero_pd(), share, idx, all,
                                        8));
    }
    if (k < count) {
      double lane0 = _mm256_cvtsd_f64(acc);
      for (; k < count; ++k) lane0 += share[src[k]];
      acc = _mm256_blend_pd(acc, _mm256_set1_pd(lane0), 0x1);
    }
  }

  double Fold() const {
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  }
};

}  // namespace

SweepFuncs Avx2SweepFuncs() { return MakeSweepFuncs<Avx2Acc>(SimdLevel::kAvx2); }

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_HAVE_AVX2
