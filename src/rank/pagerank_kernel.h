// Fused allocation-free PageRank pull sweep.
//
// The seed Jacobi engine walked the graph four times per iteration
// (dangling reduce, out-share scatter, pull pass, residual reduce) and
// sized a fresh partial-sum vector inside every reduce. This kernel
// fuses all of it into ONE pass over the rows: computing next[i] also
// accumulates the L1 residual, banks next[i] into the *next*
// iteration's dangling sum (so the leading reduce disappears), and
// writes next[i] * inv_outdeg[i] into a double-buffered out-share
// array (so the scatter pass disappears). Every buffer — iterates,
// out-shares, reduce scratch — is allocated once in the constructor;
// Sweep() itself performs no heap allocation (asserted by
// tests/rank/kernel_alloc_test.cc).
//
// Rows are partitioned by PullSweepBoundaries: fixed uniform node
// blocks, or edge-balanced blocks of ~equal in-edge weight found by
// binary search over the transpose CSR offsets. Both depend only on
// (graph, grain), never the thread count, and per-block partials fold
// through the fixed pairwise tree of common/parallel_for.h — so scores
// are bit-identical for every --threads value (the substrate's
// determinism contract, load-bearing for the quality estimator).

#ifndef QRANK_RANK_PAGERANK_KERNEL_H_
#define QRANK_RANK_PAGERANK_KERNEL_H_

#include <span>
#include <vector>

#include "common/parallel_for.h"
#include "graph/csr_graph.h"
#include "rank/pagerank.h"
#include "rank/sweep_ops.h"

namespace qrank {
namespace rank_internal {

/// The fixed row partition a pull sweep runs over. kNodeBalanced gives
/// the uniform grain-sized blocks of ParallelForBlocks; kEdgeBalanced
/// weights row i by in_degree(i) + 1 and balances total weight across
/// the same number of blocks (building the transpose if absent).
/// Deterministic in (graph, partition, grain).
std::vector<size_t> PullSweepBoundaries(const CsrGraph& graph,
                                        SweepPartition partition,
                                        size_t grain);

class PageRankKernel {
 public:
  /// Readies every buffer the iteration needs and builds the graph's
  /// transpose (so the O(E) build lands outside the timed sweeps).
  /// `graph` and `teleport` must outlive the kernel; `initial` is the
  /// first iterate (probability scale). Reads damping, num_threads and
  /// partition from `options`.
  PageRankKernel(const CsrGraph& graph, const PageRankOptions& options,
                 const std::vector<double>& teleport,
                 std::vector<double> initial);

  /// One fused Jacobi application: x <- F(x). Returns the L1 residual
  /// ||x_new - x_old||_1. Allocation-free.
  double Sweep();

  const std::vector<double>& scores() const { return x_; }
  std::vector<double> TakeScores() { return std::move(x_); }
  const std::vector<size_t>& boundaries() const { return bounds_; }

  /// The instruction set the sweeps actually run (the request from
  /// options.kernel clamped to hardware/build support) and whether they
  /// pull from the compressed transpose. For bench/test reporting.
  SimdLevel simd_level() const { return funcs_.level; }
  bool compressed() const { return compressed_; }

 private:
  const NodeId n_;
  const double alpha_;
  const std::vector<double>& v_;  // teleport distribution
  ParallelOptions par_;
  std::vector<size_t> bounds_;  // fixed sweep partition, n_+... boundaries

  std::span<const size_t> in_offsets_;
  std::span<const NodeId> in_sources_;
  SweepFuncs funcs_;        // resolved ISA variant (see sweep_ops.h)
  bool compressed_ = false;
  BlockSweepFn block_fn_ = nullptr;    // funcs_.raw_block or .compressed_block
  const uint64_t* byte_offsets_ = nullptr;  // compressed stream, if enabled
  const uint8_t* bytes_ = nullptr;
  std::vector<double> inv_outdeg_;  // 0 for dangling rows

  std::vector<double> x_;
  std::vector<double> next_;
  std::vector<double> out_share_;       // x_[u] * inv_outdeg_[u]
  std::vector<double> next_out_share_;  // double buffer, swapped per sweep
  std::vector<double> reduce_scratch_;  // per-block partials, reused
  double dangling_;  // sum of x_[u] over dangling u, carried sweep-to-sweep
};

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_RANK_PAGERANK_KERNEL_H_
