// TrafficRank — entropy-maximizing flow ranking (Tomlin, [23] in the
// paper: "A new paradigm for ranking pages on the world wide web").
//
// Instead of the random-surfer stationary distribution, Tomlin ranks
// pages by the *user traffic* flowing through them, modeled as the
// maximum-entropy distribution of flow over the link graph subject to
// flow conservation at every page. Maximum entropy gives each edge flow
// the Gibbs form p_ij = C * beta_j / beta_i with one multiplier per
// page, and conservation yields the fixed point
//
//     beta_j^2 = (sum_{k in out(j)} beta_k) / (sum_{i in in(j)} 1/beta_i)
//
// solved here by damped fixed-point iteration (a Sinkhorn-style
// balancing scheme). A virtual "world" page with an edge to and from
// every real page closes the flow (sessions begin and end somewhere),
// exactly as Tomlin's formulation adds a source/sink.
//
// The TrafficRank of a page is its through-flow (its share of total
// traffic). The paper cites this as the traffic-based alternative
// popularity metric; the quality estimator accepts it anywhere a
// popularity vector is accepted.

#ifndef QRANK_RANK_TRAFFIC_RANK_H_
#define QRANK_RANK_TRAFFIC_RANK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

struct TrafficRankOptions {
  /// Stop when the max relative change of any multiplier drops below
  /// this.
  double tolerance = 1e-10;
  uint32_t max_iterations = 500;
  /// Damping of the multiplicative update (1 = undamped; smaller is
  /// more stable on graphs with extreme degree skew).
  double update_damping = 1.0;
  bool require_convergence = false;
};

struct TrafficRankResult {
  /// Through-traffic share per page; sums to (1 - virtual-node
  /// through-flow), i.e. the flow that passes through real pages.
  std::vector<double> traffic;
  /// Normalized to sum to 1 over real pages (the ranking vector).
  std::vector<double> scores;
  uint32_t iterations = 0;
  bool converged = false;
  double residual = 0.0;
};

/// Computes TrafficRank. InvalidArgument on bad options; an empty graph
/// yields empty vectors.
Result<TrafficRankResult> ComputeTrafficRank(
    const CsrGraph& graph, const TrafficRankOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_TRAFFIC_RANK_H_
