// Helpers shared between the PageRank engine translation units.
// Not part of the public API.

#ifndef QRANK_RANK_INTERNAL_H_
#define QRANK_RANK_INTERNAL_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "rank/pagerank.h"

namespace qrank {
namespace rank_internal {

/// Validates damping/tolerance/iteration/personalization options.
Status ValidateOptions(const CsrGraph& graph, const PageRankOptions& options);

/// The (normalized) teleport distribution implied by the options.
std::vector<double> TeleportDistribution(const CsrGraph& graph,
                                         const PageRankOptions& options);

/// Applies the requested ScaleConvention in place.
void ApplyScale(const CsrGraph& graph, const PageRankOptions& options,
                std::vector<double>* scores);

/// The first power-iteration iterate: the (normalized) warm start if
/// provided, else the teleport distribution.
std::vector<double> InitialIterate(const PageRankOptions& options,
                                   const std::vector<double>& teleport);

/// Enforces require_convergence and applies scaling.
Status FinishResult(const CsrGraph& graph, const PageRankOptions& options,
                    PageRankResult* result);

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_RANK_INTERNAL_H_
