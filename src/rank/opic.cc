#include "rank/opic.h"

#include <algorithm>

#include "common/logging.h"

namespace qrank {

Result<OpicComputer> OpicComputer::Create(const CsrGraph* graph,
                                          const OpicOptions& options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (graph->num_nodes() == 0) {
    return Status::InvalidArgument("OPIC needs a non-empty graph");
  }
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  return OpicComputer(graph, options);
}

OpicComputer::OpicComputer(const CsrGraph* graph, const OpicOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  const size_t n = graph_->num_nodes();
  cash_.assign(n, 1.0 / static_cast<double>(n));
  history_.assign(n, 0.0);
  // pool_snapshot semantics are folded into cash_: instead of a per-page
  // snapshot we spread the uniform pool eagerly but lazily in batches —
  // see CollectPool in Step(). To stay O(out-degree) per step we keep
  // one global pool counter and a per-page collected marker.
  pool_collected_.assign(n, 0.0);
}

NodeId OpicComputer::PickNext() {
  const NodeId n = graph_->num_nodes();
  switch (options_.schedule) {
    case OpicSchedule::kRoundRobin: {
      NodeId next = cursor_;
      cursor_ = (cursor_ + 1) % n;
      return next;
    }
    case OpicSchedule::kRandom:
      return static_cast<NodeId>(rng_.UniformUint64(n));
    case OpicSchedule::kGreedy: {
      // O(n) scan over effective cash (cash + uncollected pool share);
      // the pool share is identical for all pages whose marker is
      // equal, so comparing cash + (pool - marker)/n is exact.
      NodeId best = 0;
      double best_cash = -1.0;
      const double inv_n = 1.0 / static_cast<double>(n);
      for (NodeId i = 0; i < n; ++i) {
        double effective = cash_[i] + (uniform_pool_ - pool_collected_[i]) *
                                          inv_n;
        if (effective > best_cash) {
          best_cash = effective;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

void OpicComputer::Step() {
  const NodeId n = graph_->num_nodes();
  const double inv_n = 1.0 / static_cast<double>(n);
  NodeId page = PickNext();

  // Collect this page's share of the uniform pool accrued since its
  // last visit, then bank and forward everything.
  double effective =
      cash_[page] + (uniform_pool_ - pool_collected_[page]) * inv_n;
  pool_collected_[page] = uniform_pool_;
  cash_[page] = 0.0;
  if (effective <= 0.0) {
    ++steps_;
    return;  // nothing to move (possible under random schedules)
  }

  history_[page] += effective;
  total_history_ += effective;

  auto nbrs = graph_->OutNeighbors(page);
  double linked_share = options_.damping * effective;
  double uniform_share = effective - linked_share;
  if (nbrs.empty()) {
    // Dangling page: everything goes to the uniform pool (footnote 2 of
    // the paper: a page with no out-links links to every page).
    uniform_share = effective;
  } else {
    double per_neighbor = linked_share / static_cast<double>(nbrs.size());
    for (NodeId t : nbrs) cash_[t] += per_neighbor;
  }
  uniform_pool_ += uniform_share;
  ++steps_;
}

void OpicComputer::RunSweeps(uint32_t sweeps) {
  uint64_t total = static_cast<uint64_t>(sweeps) * graph_->num_nodes();
  for (uint64_t i = 0; i < total; ++i) Step();
}

std::vector<double> OpicComputer::Importance() const {
  const NodeId n = graph_->num_nodes();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> importance(n);
  // Circulating cash totals 1, so the denominator is history + 1.
  double denom = total_history_ + 1.0;
  for (NodeId i = 0; i < n; ++i) {
    double effective =
        cash_[i] + (uniform_pool_ - pool_collected_[i]) * inv_n;
    importance[i] = (history_[i] + effective) / denom;
  }
  return importance;
}

}  // namespace qrank
