#include "rank/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "audit/audit.h"
#include "common/logging.h"
#include "common/parallel_for.h"
#include "rank/internal.h"
#include "rank/pagerank_kernel.h"
#include "rank/rank_vector.h"

namespace qrank {

namespace {

// Compile-time audit level (see common/logging.h and src/audit/): 1 runs
// the rank.* vector invariants on every finished result, 2 additionally
// re-checks the engine.residual fixed-point contract on declared
// convergence.
constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

}  // namespace

const char* SweepPartitionName(SweepPartition partition) {
  return partition == SweepPartition::kNodeBalanced ? "node" : "edge";
}

bool ParseSweepPartition(const std::string& text, SweepPartition* out) {
  if (text == "node") {
    *out = SweepPartition::kNodeBalanced;
  } else if (text == "edge") {
    *out = SweepPartition::kEdgeBalanced;
  } else {
    return false;
  }
  return true;
}

const char* KernelVariantName(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kSimd:
      return "simd";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool ParseKernelVariant(const std::string& text, KernelVariant* out) {
  if (text == "scalar") {
    *out = KernelVariant::kScalar;
  } else if (text == "simd") {
    *out = KernelVariant::kSimd;
  } else if (text == "avx2") {
    *out = KernelVariant::kAvx2;
  } else if (text == "avx512") {
    *out = KernelVariant::kAvx512;
  } else {
    return false;
  }
  return true;
}

namespace rank_internal {

Status ValidateOptions(const CsrGraph& graph, const PageRankOptions& options) {
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!options.personalization.empty()) {
    if (options.personalization.size() != graph.num_nodes()) {
      return Status::InvalidArgument(
          "personalization vector size must equal num_nodes");
    }
    double sum = 0.0;
    for (double w : options.personalization) {
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::InvalidArgument(
            "personalization weights must be finite and non-negative");
      }
      sum += w;
    }
    if (sum <= 0.0) {
      return Status::InvalidArgument("personalization weights must not all "
                                     "be zero");
    }
  }
  if (!options.initial_scores.empty()) {
    if (options.initial_scores.size() != graph.num_nodes()) {
      return Status::InvalidArgument(
          "initial_scores size must equal num_nodes");
    }
    double sum = 0.0;
    for (double w : options.initial_scores) {
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::InvalidArgument(
            "initial_scores must be finite and non-negative");
      }
      sum += w;
    }
    if (sum <= 0.0) {
      return Status::InvalidArgument("initial_scores must not all be zero");
    }
  }
  return Status::OK();
}

std::vector<double> InitialIterate(const PageRankOptions& options,
                                   const std::vector<double>& teleport) {
  if (options.initial_scores.empty()) return teleport;
  std::vector<double> x = options.initial_scores;
  NormalizeSum(&x, 1.0);
  return x;
}

std::vector<double> TeleportDistribution(const CsrGraph& graph,
                                         const PageRankOptions& options) {
  const size_t n = graph.num_nodes();
  std::vector<double> v;
  if (options.personalization.empty()) {
    v.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  } else {
    v = options.personalization;
    NormalizeSum(&v, 1.0);
  }
  return v;
}

void ApplyScale(const CsrGraph& graph, const PageRankOptions& options,
                std::vector<double>* scores) {
  if (options.scale == ScaleConvention::kTotalMassN) {
    double n = static_cast<double>(graph.num_nodes());
    for (double& s : *scores) s *= n;
  }
}

Status FinishResult(const CsrGraph& graph, const PageRankOptions& options,
                    PageRankResult* result) {
  if (!result->converged && options.require_convergence) {
    return Status::NotConverged(
        "PageRank did not reach tolerance in " +
        std::to_string(options.max_iterations) + " iterations (residual " +
        std::to_string(result->residual) + ")");
  }
  ApplyScale(graph, options, &result->scores);
  if constexpr (kAuditLevel >= 1) {
    // Every engine funnels through here: finite non-negative scores with
    // the L1 mass the scale convention promises. Abort loudly — a bad
    // vector escaping the rank layer poisons everything downstream.
    if (graph.num_nodes() > 0) {
      const double mass = options.scale == ScaleConvention::kTotalMassN
                              ? static_cast<double>(graph.num_nodes())
                              : 1.0;
      const AuditReport audit = AuditRankVector(result->scores, mass);
      QRANK_CHECK(audit.ok())
          << "engine produced an invalid rank vector: " << audit.ToString();
    }
  }
  return Status::OK();
}

}  // namespace rank_internal

using rank_internal::FinishResult;
using rank_internal::TeleportDistribution;
using rank_internal::ValidateOptions;

Result<PageRankResult> ComputePageRank(const CsrGraph& graph,
                                       const PageRankOptions& options) {
  QRANK_RETURN_NOT_OK(ValidateOptions(graph, options));
  const NodeId n = graph.num_nodes();
  PageRankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Pull formulation: next[i] depends only on x and read-only CSR
  // arrays, so rows parallelize with no write conflicts, and each row's
  // in-neighbor sum runs in the fixed ascending-source order — the
  // iterates are bit-identical for every thread count. The per-sweep
  // work (residual, dangling carry, out-share refresh) is fused into a
  // single allocation-free pass; see rank/pagerank_kernel.h.
  const std::vector<double> v = TeleportDistribution(graph, options);
  rank_internal::PageRankKernel kernel(
      graph, options, v, rank_internal::InitialIterate(options, v));

  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.residual = kernel.Sweep();
    result.iterations = iter;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = kernel.TakeScores();
  QRANK_RETURN_NOT_OK(FinishResult(graph, options, &result));
  if constexpr (kAuditLevel >= 2) {
    // Jacobi's declared convergence means the last update moved less
    // than tolerance, so one more operator application moves at most
    // damping * tolerance — comfortably inside the validator's bound.
    // (The validator assumes uniform teleport; skip under
    // personalization.)
    if (result.converged && options.personalization.empty()) {
      AuditContext ctx;
      ctx.graph = &graph;
      ctx.scores = &result.scores;
      ctx.damping = options.damping;
      ctx.tolerance = options.tolerance;
      ctx.declared_converged = true;
      const Result<AuditReport> audit = RunAuditValidator("engine.residual",
                                                          ctx);
      QRANK_CHECK(audit.ok() && audit.value().ok())
          << "declared-converged scores fail the fixed-point re-check: "
          << (audit.ok() ? audit.value().ToString()
                         : audit.status().ToString());
    }
  }
  return result;
}

Result<PageRankResult> ComputePageRankGaussSeidel(
    const CsrGraph& graph, const PageRankOptions& options) {
  QRANK_RETURN_NOT_OK(ValidateOptions(graph, options));
  const NodeId n = graph.num_nodes();
  PageRankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const double alpha = options.damping;
  const std::vector<double> v = TeleportDistribution(graph, options);
  std::vector<double> x = rank_internal::InitialIterate(options, v);

  // Pull formulation over the cached transpose (shared with any other
  // engine on this graph — no O(E) private copy); out-degrees cached
  // once.
  graph.BuildTranspose();
  std::vector<double> inv_outdeg(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    uint32_t d = graph.OutDegree(u);
    if (d > 0) inv_outdeg[u] = 1.0 / static_cast<double>(d);
  }

  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    // Dangling mass held fixed during a sweep (recomputed per sweep);
    // converges to the same fixed point.
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (inv_outdeg[u] == 0.0) dangling += x[u];
    }
    double residual = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      double pull = 0.0;
      for (NodeId u : graph.InNeighbors(i)) {
        pull += x[u] * inv_outdeg[u];
      }
      double fresh =
          (1.0 - alpha + alpha * dangling) * v[i] + alpha * pull;
      residual += std::fabs(fresh - x[i]);
      // A dangling node's own mass feeds the sweep-constant `dangling`;
      // the update is still a contraction.
      x[i] = fresh;
    }
    // Gauss-Seidel drifts slightly off the unit simplex because later
    // updates see fresh values; renormalize to keep probability scale.
    NormalizeSum(&x, 1.0);

    result.residual = residual;
    result.iterations = iter;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(x);
  QRANK_RETURN_NOT_OK(FinishResult(graph, options, &result));
  return result;
}

}  // namespace qrank
