#include "rank/hits.h"

#include <cmath>

#include "rank/rank_vector.h"

namespace qrank {

namespace {

// L2-normalizes in place; returns false if the norm is zero.
bool NormalizeL2(std::vector<double>* v) {
  double ss = 0.0;
  for (double x : *v) ss += x * x;
  if (ss <= 0.0) return false;
  double inv = 1.0 / std::sqrt(ss);
  for (double& x : *v) x *= inv;
  return true;
}

}  // namespace

Result<HitsResult> ComputeHits(const CsrGraph& graph,
                               const HitsOptions& options) {
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  const NodeId n = graph.num_nodes();
  HitsResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  if (graph.num_edges() == 0) {
    // No link structure: all scores zero by convention.
    result.authority.assign(n, 0.0);
    result.hub.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  result.authority.assign(n, 1.0);
  result.hub.assign(n, 1.0);
  NormalizeL2(&result.authority);
  NormalizeL2(&result.hub);
  std::vector<double> prev_auth(n, 0.0);

  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    prev_auth = result.authority;

    // authority <- sum of hub over in-links (push over out-links).
    std::fill(result.authority.begin(), result.authority.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId t : graph.OutNeighbors(u)) {
        result.authority[t] += result.hub[u];
      }
    }
    if (!NormalizeL2(&result.authority)) {
      return Status::Internal("authority vector collapsed to zero");
    }

    // hub <- sum of authority over out-links.
    for (NodeId u = 0; u < n; ++u) {
      double h = 0.0;
      for (NodeId t : graph.OutNeighbors(u)) {
        h += result.authority[t];
      }
      result.hub[u] = h;
    }
    if (!NormalizeL2(&result.hub)) {
      return Status::Internal("hub vector collapsed to zero");
    }

    result.residual = L1Distance(result.authority, prev_auth);
    result.iterations = iter;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  if (!result.converged && options.require_convergence) {
    return Status::NotConverged("HITS did not converge");
  }
  return result;
}

}  // namespace qrank
