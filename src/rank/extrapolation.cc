#include "rank/extrapolation.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "rank/internal.h"
#include "rank/rank_vector.h"

namespace qrank {

using rank_internal::FinishResult;
using rank_internal::TeleportDistribution;
using rank_internal::ValidateOptions;

namespace {

// One quadratic-extrapolation step from four successive iterates
// h[0]=x_{k-3} .. h[3]=x_k. Returns false (leaving *out untouched) when
// the least-squares system is numerically singular.
bool QuadraticExtrapolate(const std::array<std::vector<double>, 4>& h,
                          std::vector<double>* out) {
  const size_t n = h[0].size();
  // y_j = x_{k-3+j} - x_{k-3}, j = 1..3. Solve min || [y1 y2] g + y3 ||.
  double a11 = 0.0, a12 = 0.0, a22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double y1 = h[1][i] - h[0][i];
    double y2 = h[2][i] - h[0][i];
    double y3 = h[3][i] - h[0][i];
    a11 += y1 * y1;
    a12 += y1 * y2;
    a22 += y2 * y2;
    b1 += y1 * y3;
    b2 += y2 * y3;
  }
  double det = a11 * a22 - a12 * a12;
  double scale = a11 * a22;
  if (!(std::fabs(det) > 1e-14 * (scale > 0.0 ? scale : 1.0))) {
    return false;  // iterates already (nearly) collinear
  }
  double g1 = (-b1 * a22 + b2 * a12) / det;
  double g2 = (-a11 * b2 + a12 * b1) / det;
  const double g3 = 1.0;
  double beta0 = g1 + g2 + g3;
  double beta1 = g2 + g3;
  double beta2 = g3;

  out->resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double val = beta0 * h[1][i] + beta1 * h[2][i] + beta2 * h[3][i];
    // Extrapolation can momentarily produce tiny negative components;
    // clamp before renormalizing (the iterate must stay a distribution).
    (*out)[i] = val > 0.0 ? val : 0.0;
    sum += (*out)[i];
  }
  if (sum <= 0.0) return false;
  for (double& x : *out) x /= sum;
  return true;
}

}  // namespace

Result<ExtrapolatedPageRankResult> ComputeExtrapolatedPageRank(
    const CsrGraph& graph, const ExtrapolatedPageRankOptions& options) {
  QRANK_RETURN_NOT_OK(ValidateOptions(graph, options.base));
  if (options.period < 4) {
    return Status::InvalidArgument("extrapolation period must be >= 4");
  }

  const NodeId n = graph.num_nodes();
  ExtrapolatedPageRankResult result;
  if (n == 0) {
    result.base.converged = true;
    return result;
  }

  const double alpha = options.base.damping;
  const std::vector<double> v = TeleportDistribution(graph, options.base);
  std::vector<double> x = v;
  std::vector<double> next(n, 0.0);

  // Ring buffer of the last 4 iterates (h[3] most recent).
  std::array<std::vector<double>, 4> history;
  uint32_t history_filled = 0;

  for (uint32_t iter = 1; iter <= options.base.max_iterations; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = graph.OutNeighbors(u);
      if (nbrs.empty()) {
        dangling += x[u];
        continue;
      }
      double share = alpha * x[u] / static_cast<double>(nbrs.size());
      for (NodeId t : nbrs) next[t] += share;
    }
    double teleport_mass = 1.0 - alpha + alpha * dangling;
    for (NodeId i = 0; i < n; ++i) next[i] += teleport_mass * v[i];

    result.base.residual = L1Distance(next, x);
    x.swap(next);
    result.base.iterations = iter;
    if (result.base.residual < options.base.tolerance) {
      result.base.converged = true;
      break;
    }

    // Maintain history and periodically extrapolate.
    if (history_filled < 4) {
      history[history_filled++] = x;
    } else {
      std::rotate(history.begin(), history.begin() + 1, history.end());
      history[3] = x;
    }
    if (history_filled == 4 && iter >= options.warmup &&
        iter % options.period == 0) {
      std::vector<double> cleaned;
      if (QuadraticExtrapolate(history, &cleaned)) {
        x = std::move(cleaned);
        ++result.extrapolations_applied;
        history_filled = 0;  // restart history from the cleaned iterate
      }
    }
  }

  result.base.scores = std::move(x);
  QRANK_RETURN_NOT_OK(FinishResult(graph, options.base, &result.base));
  return result;
}

}  // namespace qrank
