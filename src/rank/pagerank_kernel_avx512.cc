// AVX-512 pull-sweep variant (requires AVX-512F + VL; compiled behind
// QRANK_HAVE_AVX512, resolved at runtime only on capable CPUs).
//
// Eight gather lanes per step, masked gather for the < 8 remainder —
// no scalar tail at all. The 8-lane fold is a DIFFERENT floating-point
// association than the scalar 4-accumulator oracle, so this variant is
// NOT bit-exact: it ships the documented tolerance instead. Each
// element's pull is a re-association of the same <= deg(i) addends
// (each bounded by the row's share mass <= 1), so the per-element error
// is O(deg * eps * pull) and the iteration contracts it by
// alpha/(1 - alpha); the equivalence suite enforces a <= 1e-14
// per-element bound against scalar on every generator, thread count
// and partition (DESIGN.md §5g). The -mavx512f this TU builds under
// also implies FMA, so the row update here may contract to a fused
// multiply-add — another rounding difference the tolerance absorbs
// (and the reason the compressed block sweep is NOT instantiated
// here; see sweep_ops.h).

#if defined(QRANK_HAVE_AVX512)

#include <immintrin.h>

#include "rank/sweep_impl.h"

namespace qrank {
namespace rank_internal {
namespace {

struct Avx512Acc {
  __m512d acc = _mm512_setzero_pd();

  void Accumulate(const NodeId* src, size_t count, const double* share) {
    // Mask-form gathers with an explicit zero source throughout: the
    // unmasked intrinsics expand through _mm512_undefined_pd(), whose
    // deliberately uninitialized dummy trips -Wuninitialized under GCC.
    size_t k = 0;
    for (; k + 8 <= count; k += 8) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + k));
      acc = _mm512_add_pd(
          acc, _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xff, idx,
                                        share, 8));
    }
    // Unconditional masked tail: a zero mask gathers nothing and adds
    // zero. Web-graph rows average ~8 in-edges, so a data-dependent
    // `if (rem > 0)` here is a near-guaranteed mispredict per row —
    // the masked no-op is cheaper than the flush.
    const size_t rem = count - k;
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, src + k);
    acc = _mm512_add_pd(
        acc, _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx,
                                      share, 8));
  }

  double Fold() const {
    // In-register lane fold: lane j and lane 4+j pair first (hi/lo
    // 256-bit halves added), then the 4-accumulator fold. The maskz
    // extract forms dodge the undefined-dummy expansion of plain
    // _mm512_extractf64x4_pd / _mm512_castpd512_pd256, which trips
    // -Wuninitialized under GCC.
    const __m256d lo4 = _mm512_maskz_extractf64x4_pd(0xf, acc, 0);
    const __m256d hi4 = _mm512_maskz_extractf64x4_pd(0xf, acc, 1);
    const __m256d f = _mm256_add_pd(lo4, hi4);  // f_j = lane_j + lane_{4+j}
    const __m128d f01 = _mm256_castpd256_pd128(f);
    const __m128d f23 = _mm256_extractf128_pd(f, 1);
    const double a = _mm_cvtsd_f64(f01) +
                     _mm_cvtsd_f64(_mm_unpackhi_pd(f01, f01));
    const double b = _mm_cvtsd_f64(f23) +
                     _mm_cvtsd_f64(_mm_unpackhi_pd(f23, f23));
    return a + b;
  }
};

}  // namespace

SweepFuncs Avx512SweepFuncs() {
  return MakeSweepFuncs<Avx512Acc>(SimdLevel::kAvx512);
}

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_HAVE_AVX512
