// Pull-sweep dispatch surface: the function-pointer bundle every
// instruction-set variant of the fused sweep exports, and the resolver
// that picks one at runtime.
//
// Each variant lives in its own translation unit compiled with the
// matching -m flags (pagerank_kernel.cc = scalar, pagerank_kernel_avx2
// / _avx512.cc behind QRANK_HAVE_AVX2/QRANK_HAVE_AVX512); all three
// instantiate the shared templates of sweep_impl.h with their lane
// accumulator, so the fused row loop is written once. Dispatch happens
// once per kernel construction — the hot loop calls through a pointer
// per *block*, not per row.
//
// Determinism contract (DESIGN.md §5g): the scalar 4-accumulator fold
// is the oracle. The AVX2 accumulator is that fold with p0..p3 as the
// four lanes of one __m256d — per-lane IEEE adds in the identical
// order, so AVX2 scores are bit-exact against scalar. AVX-512 folds 8
// lanes (a different association) and carries a test-enforced <= 1e-14
// per-element bound instead. The compressed (decode-on-the-fly) path
// is one shared fused decode+accumulate under the scalar oracle fold —
// varint decode dominates a compressed row, so lane parallelism buys
// nothing there — which makes compressed output bit-exact against the
// SCALAR raw path for every variant.

#ifndef QRANK_RANK_SWEEP_OPS_H_
#define QRANK_RANK_SWEEP_OPS_H_

#include <array>
#include <cstdint>

#include "common/simd.h"
#include "graph/edge_list.h"
#include "rank/pagerank.h"

namespace qrank {
namespace rank_internal {

/// Everything one fused block sweep reads and writes. Raw-path fields
/// and compressed-path fields are both present; a variant's raw_block
/// only touches in_off/in_src, its compressed_block only byte_off/bytes.
struct SweepArgs {
  const size_t* in_off = nullptr;      // transpose row offsets (raw)
  const NodeId* in_src = nullptr;      // transpose sources (raw)
  const uint64_t* byte_off = nullptr;  // compressed row byte offsets
  const uint8_t* bytes = nullptr;      // compressed varint stream
  const double* x = nullptr;           // current iterate
  const double* v = nullptr;           // teleport distribution
  const double* out_share = nullptr;   // x[u] * inv_outdeg[u]
  const double* inv_outdeg = nullptr;
  double* next = nullptr;
  double* next_out_share = nullptr;
  double alpha = 0.0;
  double base_weight = 0.0;
};

/// Fused sweep over rows [lo, hi): writes next/next_out_share, returns
/// {L1 residual, next dangling mass} for the block.
using BlockSweepFn = std::array<double, 2> (*)(const SweepArgs&, size_t lo,
                                               size_t hi);

/// Plain pull over `count` explicit sources (the delta engine's per-row
/// update): sum of out_share[src[k]] under the variant's fold.
using RowPullFn = double (*)(const NodeId* src, size_t count,
                             const double* out_share);

/// Same pull over one compressed row [begin, end) of the varint stream.
/// Always the shared fused scalar decode+accumulate, whatever the
/// variant (see the determinism contract above).
using CompressedRowPullFn = double (*)(const uint8_t* begin,
                                       const uint8_t* end,
                                       const double* out_share);

struct SweepFuncs {
  SimdLevel level = SimdLevel::kScalar;  // what actually got resolved
  BlockSweepFn raw_block = nullptr;
  BlockSweepFn compressed_block = nullptr;
  RowPullFn row_pull = nullptr;
  CompressedRowPullFn compressed_row_pull = nullptr;
};

/// The compressed block sweep every variant shares. Defined in the
/// scalar TU (pagerank_kernel.cc) on purpose: an ISA TU would compile
/// the row loop under -mavx512f, whose implied FMA lets the compiler
/// contract `base_weight * v[i] + alpha * pull` into one rounding and
/// silently break the compressed-equals-scalar bit-exactness contract.
std::array<double, 2> ScalarCompressedBlockSweep(const SweepArgs& args,
                                                 size_t lo, size_t hi);

/// The requested ceiling, clamped to what DetectSimdLevel() allows
/// (hardware x build x QRANK_FORCE_SIMD_LEVEL). Never escalates:
/// kScalar always returns the oracle.
SweepFuncs ResolveSweepFuncs(SimdLevel requested);

/// The SimdLevel ResolveSweepFuncs would run for a KernelVariant:
/// kScalar -> scalar, kAvx2/kAvx512 -> that level (clamped down when
/// unavailable), kSimd -> best available.
SimdLevel KernelVariantLevel(KernelVariant variant);

}  // namespace rank_internal
}  // namespace qrank

#endif  // QRANK_RANK_SWEEP_OPS_H_
