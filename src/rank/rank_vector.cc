#include "rank/rank_vector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace qrank {

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  QRANK_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L1Norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += std::fabs(x);
  return sum;
}

void NormalizeSum(std::vector<double>* v, double target_sum) {
  double sum = std::accumulate(v->begin(), v->end(), 0.0);
  if (sum == 0.0) return;
  double scale = target_sum / sum;
  for (double& x : *v) x *= scale;
}

std::vector<double> ProjectToSize(const std::vector<double>& scores,
                                  size_t n) {
  std::vector<double> out(scores);
  const double pad = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  out.resize(n, pad);
  NormalizeSum(&out, 1.0);
  return out;
}

std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k), ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

std::vector<uint32_t> DenseRanks(const std::vector<double>& scores) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  std::vector<uint32_t> rank(scores.size(), 0);
  for (uint32_t pos = 0; pos < ids.size(); ++pos) rank[ids[pos]] = pos;
  return rank;
}

}  // namespace qrank
