// PageRank engines.
//
// Implements the metric of Section 3 of the paper:
//
//   PR(p_i) = d + (1 - d) [ PR(p_1)/c_1 + ... + PR(p_m)/c_m ]
//
// where d is the paper's damping (teleport) probability and c_j the
// out-degree of the linking page. Footnote 2 ("a page with no outgoing
// link is assumed to link to every page") is realized as uniform
// redistribution of dangling mass, without materializing O(n^2) edges.
//
// Two numeric conventions are supported:
//  * kProbability — scores form a distribution (sum to 1): the
//    random-surfer stationary distribution.
//  * kTotalMassN — scores sum to num_nodes, matching the paper's
//    "initial PageRank value 1 per page" convention used in Section 8.
//
// Engines:
//  * ComputePageRank        — Jacobi power iteration in the pull
//    formulation (per-row independent, runs on the parallel substrate;
//    scores are bit-identical for every num_threads value).
//  * ComputePageRankGaussSeidel — in-place sweeps, typically ~2x fewer
//    iterations; requires the transpose. Deliberately serial: each
//    update reads values written earlier in the same sweep, so any
//    parallel order would change the iterates. It is the independent
//    reference the equivalence tests compare the parallel engine to.
//  * ComputeAdaptivePageRank (adaptive_pagerank.h)   — [11] in the paper.
//  * ComputeExtrapolatedPageRank (extrapolation.h)   — [12] in the paper.

#ifndef QRANK_RANK_PAGERANK_H_
#define QRANK_RANK_PAGERANK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

enum class ScaleConvention {
  kProbability,  // scores sum to 1
  kTotalMassN,   // scores sum to num_nodes (paper's Section 8 convention)
};

/// How the Jacobi pull sweep splits rows into fixed parallel blocks.
/// Either way the partition depends only on the graph and the grain —
/// never on the thread count — so scores stay bit-identical across
/// --threads values; the two partitions are distinct deterministic
/// engines (different summation order, same fixed point).
enum class SweepPartition {
  /// Equal node count per block. On power-law graphs the block holding
  /// the hubs carries most of the edges and the other threads idle.
  kNodeBalanced,
  /// Equal work per block, weighting row i by in_degree(i) + 1 (one
  /// binary search per boundary over the transpose CSR offsets).
  kEdgeBalanced,
};

/// "node" | "edge" — the names the shared --partition flag accepts.
const char* SweepPartitionName(SweepPartition partition);

/// Parses the names above; false on unknown input.
bool ParseSweepPartition(const std::string& text, SweepPartition* out);

/// Instruction-set variant of the fused pull sweep (see
/// rank/pagerank_kernel.h and DESIGN.md §5g). Scalar is the default
/// and the oracle; AVX2 reproduces its 4-accumulator fold bit-for-bit
/// (lane j == accumulator j); AVX-512 folds 8 lanes and carries a
/// test-enforced <= 1e-14 per-element tolerance. Requests the build or
/// hardware cannot honor clamp DOWN (never up), so every option value
/// is safe on every machine.
enum class KernelVariant {
  kScalar,  // portable reference fold
  kSimd,    // best available: runtime CPUID pick of avx512 > avx2 > scalar
  kAvx2,
  kAvx512,
};

/// "scalar" | "simd" | "avx2" | "avx512".
const char* KernelVariantName(KernelVariant variant);

/// Parses the names above; false on unknown input.
bool ParseKernelVariant(const std::string& text, KernelVariant* out);

struct PageRankOptions {
  /// Probability of following a link (1 - paper's d). 0.85 is the
  /// standard Brin-Page value.
  double damping = 0.85;

  /// Stop when the L1 change between successive iterates (in probability
  /// scale) drops below this.
  double tolerance = 1e-10;

  uint32_t max_iterations = 200;

  ScaleConvention scale = ScaleConvention::kProbability;

  /// Optional teleport distribution (personalized / topic-sensitive
  /// PageRank, [10] in the paper). Empty means uniform. Must have
  /// num_nodes entries summing to a positive value; it is normalized
  /// internally. Dangling mass follows the same distribution.
  std::vector<double> personalization;

  /// If true, a run that hits max_iterations without meeting tolerance
  /// returns Status::NotConverged; if false it returns the last iterate
  /// with converged=false.
  bool require_convergence = false;

  /// Optional warm-start iterate (probability or any positive scale —
  /// normalized internally). Empty means start from the teleport
  /// distribution. Must have num_nodes non-negative entries with a
  /// positive sum. The fixed point is unchanged; only the iteration
  /// count depends on the start.
  std::vector<double> initial_scores;

  /// Executor count for the Jacobi engine: 0 = the process default
  /// (SetDefaultThreads / hardware concurrency), 1 = serial on the
  /// calling thread. Scores do not depend on this value — reductions
  /// use a fixed block tree (see common/parallel_for.h).
  int num_threads = 0;

  /// Row partition of the Jacobi sweep (see SweepPartition). Edge
  /// balancing is the default: it fixes the thread-skew that node
  /// blocks suffer on hub-heavy web graphs and costs one boundary
  /// computation per solve.
  SweepPartition partition = SweepPartition::kEdgeBalanced;

  /// Pull-sweep instruction set (see KernelVariant). Scores do not
  /// depend on the partition or thread count under ANY variant; they
  /// are bit-identical across variants except kAvx512 (tolerance
  /// documented above).
  KernelVariant kernel = KernelVariant::kScalar;

  /// Pull from the delta-gap compressed transpose (decode-on-the-fly;
  /// graph/compressed_csr.h) instead of the raw transpose arrays.
  /// Bit-identical scores for every variant — the decoder feeds the
  /// same fold — trading decode ALU for the memory traffic the sweep
  /// is bound on. The encode is cached on the graph like the transpose.
  bool use_compressed_transpose = false;
};

struct PageRankResult {
  std::vector<double> scores;
  uint32_t iterations = 0;
  bool converged = false;
  /// Final L1 residual (probability scale).
  double residual = 0.0;
};

/// Jacobi power iteration. InvalidArgument on bad options
/// (damping outside [0,1), non-positive tolerance, bad personalization).
/// An empty graph yields an empty score vector.
Result<PageRankResult> ComputePageRank(const CsrGraph& graph,
                                       const PageRankOptions& options = {});

/// Gauss-Seidel sweeps over the pull formulation (uses the transpose;
/// in-place updates so later nodes see this sweep's fresh values).
/// Same contract as ComputePageRank.
Result<PageRankResult> ComputePageRankGaussSeidel(
    const CsrGraph& graph, const PageRankOptions& options = {});

}  // namespace qrank

#endif  // QRANK_RANK_PAGERANK_H_
