// OPIC — Adaptive On-line Page Importance Computation (Abiteboul,
// Preda & Cobena, [1] in the paper).
//
// Unlike power iteration, OPIC needs no global synchronized passes: each
// page holds "cash"; visiting a page banks its cash into the page's
// history and forwards it along out-links. The importance estimate of a
// page is its share of the total banked history, which converges to the
// stationary link-flow distribution regardless of the page visit order
// (as long as every page is visited infinitely often). This makes the
// metric maintainable *during a crawl* — the same online spirit as the
// paper's evolving-snapshot estimator.
//
// We implement the damped variant: a (1 - damping) share of forwarded
// cash is spread uniformly over all pages (equivalent to the virtual
// root page of the original paper), so the fixed point equals PageRank
// with the same damping factor.

#ifndef QRANK_RANK_OPIC_H_
#define QRANK_RANK_OPIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

/// Order in which pages are visited.
enum class OpicSchedule {
  kRoundRobin,  // systematic sweep (original paper's baseline)
  kRandom,      // uniformly random page each step
  kGreedy,      // always the page with the most accumulated cash
};

struct OpicOptions {
  double damping = 0.85;
  OpicSchedule schedule = OpicSchedule::kRoundRobin;
  /// Seed for the kRandom schedule.
  uint64_t seed = 1;
};

/// Online importance computation over a fixed graph.
///
/// Typical use: construct, call Step() (or RunSweeps()) as budget
/// allows, read Importance() at any time — estimates improve montonically
/// in expectation and are usable long before convergence.
class OpicComputer {
 public:
  static Result<OpicComputer> Create(const CsrGraph* graph,
                                     const OpicOptions& options = {});

  /// Processes one page (per the schedule): banks its cash, forwards it.
  void Step();

  /// Runs `sweeps` * num_nodes steps.
  void RunSweeps(uint32_t sweeps);

  /// Current importance estimates: (history + cash) share, a
  /// probability distribution over pages. Converges to PageRank with
  /// the configured damping.
  std::vector<double> Importance() const;

  uint64_t steps() const { return steps_; }
  /// Total banked history (grows linearly with steps).
  double total_history() const { return total_history_; }

 private:
  OpicComputer(const CsrGraph* graph, const OpicOptions& options);

  NodeId PickNext();

  const CsrGraph* graph_;  // not owned; must outlive the computer
  OpicOptions options_;
  Rng rng_;
  std::vector<double> cash_;
  std::vector<double> history_;
  /// Value of uniform_pool_ when the page last collected its share;
  /// effective cash = cash_[i] + (uniform_pool_ - pool_collected_[i])/n.
  std::vector<double> pool_collected_;
  double total_history_ = 0.0;
  double uniform_pool_ = 0.0;  // cash owed uniformly to every page
  NodeId cursor_ = 0;          // round-robin position
  uint64_t steps_ = 0;
};

}  // namespace qrank

#endif  // QRANK_RANK_OPIC_H_
