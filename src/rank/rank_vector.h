// Small utilities over score vectors shared by all ranking algorithms.

#ifndef QRANK_RANK_RANK_VECTOR_H_
#define QRANK_RANK_RANK_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace qrank {

/// L1 norm of (a - b). Requires equal sizes.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of elements.
double L1Norm(const std::vector<double>& v);

/// Scales `v` in place so it sums to `target_sum` (no-op if the current
/// sum is zero).
void NormalizeSum(std::vector<double>* v, double target_sum = 1.0);

/// Projects a score vector onto a node set of size n: extra entries are
/// truncated, new entries padded with the uniform share 1/n, and the
/// result renormalized to sum to 1. This is the warm-start
/// renormalization used when seeding PageRank on one snapshot from the
/// converged vector of another whose node set differs.
std::vector<double> ProjectToSize(const std::vector<double>& scores, size_t n);

/// Indices of the k largest scores, highest first; ties broken by lower
/// node id (stable, deterministic).
std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k);

/// rank[i] = position of node i when sorted by descending score
/// (0 = best; ties broken by lower node id).
std::vector<uint32_t> DenseRanks(const std::vector<double>& scores);

}  // namespace qrank

#endif  // QRANK_RANK_RANK_VECTOR_H_
