// Small utilities over score vectors shared by all ranking algorithms.

#ifndef QRANK_RANK_RANK_VECTOR_H_
#define QRANK_RANK_RANK_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace qrank {

/// L1 norm of (a - b). Requires equal sizes.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Sum of elements.
double L1Norm(const std::vector<double>& v);

/// Scales `v` in place so it sums to `target_sum` (no-op if the current
/// sum is zero).
void NormalizeSum(std::vector<double>* v, double target_sum = 1.0);

/// Indices of the k largest scores, highest first; ties broken by lower
/// node id (stable, deterministic).
std::vector<NodeId> TopK(const std::vector<double>& scores, size_t k);

/// rank[i] = position of node i when sorted by descending score
/// (0 = best; ties broken by lower node id).
std::vector<uint32_t> DenseRanks(const std::vector<double>& scores);

}  // namespace qrank

#endif  // QRANK_RANK_RANK_VECTOR_H_
