#include "graph/graph_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace qrank {

namespace {

constexpr char kMagic[4] = {'Q', 'R', 'K', 'G'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t hash) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= kPrime;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

// Strict decimal parse: digits only, no sign, no overflow. istream's
// operator>> into an unsigned type silently wraps negative input, so ids
// are tokenized and validated by hand instead.
bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

Status WriteEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f << "# qrank-edges v1\n";
  f << edges.num_nodes() << "\n";
  for (const Edge& e : edges.edges()) {
    f << e.src << " " << e.dst << "\n";
  }
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::string line;
  bool have_header = false;
  EdgeList out;
  NodeId declared_nodes = 0;
  size_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string token;
    while (ls >> token) tokens.push_back(token);
    // Reject negative ids explicitly: extracting into an unsigned type
    // would silently wrap them into (usually enormous) valid-looking
    // values, and a tiny graph could even alias a real node.
    for (const std::string& t : tokens) {
      if (t[0] == '-') {
        return Status::Corruption("negative id at line " +
                                  std::to_string(line_no));
      }
    }
    if (!have_header) {
      uint64_t n = 0;
      if (tokens.size() != 1 || !ParseU64(tokens[0], &n) ||
          n > static_cast<uint64_t>(kInvalidNode)) {
        return Status::Corruption("bad node count at line " +
                                  std::to_string(line_no));
      }
      declared_nodes = static_cast<NodeId>(n);
      out.EnsureNodes(declared_nodes);
      have_header = true;
      continue;
    }
    if (tokens.size() < 2) {
      return Status::Corruption("truncated edge at line " +
                                std::to_string(line_no));
    }
    if (tokens.size() > 2) {
      return Status::Corruption("trailing garbage at line " +
                                std::to_string(line_no));
    }
    uint64_t s = 0, d = 0;
    if (!ParseU64(tokens[0], &s) || !ParseU64(tokens[1], &d)) {
      return Status::Corruption("malformed edge at line " +
                                std::to_string(line_no));
    }
    if (s >= declared_nodes || d >= declared_nodes) {
      return Status::Corruption("edge endpoint out of range at line " +
                                std::to_string(line_no));
    }
    out.Add(static_cast<NodeId>(s), static_cast<NodeId>(d));
  }
  if (!have_header) return Status::Corruption("missing node-count header");
  return out;
}

Status WriteGraphBinary(const CsrGraph& graph, const std::string& path) {
  std::vector<uint8_t> payload;
  payload.reserve(16 + graph.offsets().size() * 8 + graph.targets().size() * 4);
  AppendPod(&payload, static_cast<uint32_t>(graph.num_nodes()));
  AppendPod(&payload, static_cast<uint64_t>(graph.num_edges()));
  for (size_t off : graph.offsets()) {
    AppendPod(&payload, static_cast<uint64_t>(off));
  }
  for (NodeId t : graph.targets()) {
    AppendPod(&payload, static_cast<uint32_t>(t));
  }
  uint64_t checksum = Fnv1a(payload.data(), payload.size(), kFnvOffset);

  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(kMagic, sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  f.write(reinterpret_cast<const char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<CsrGraph> ReadGraphBinary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);

  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!ReadPod(f, &num_nodes) || !ReadPod(f, &num_edges)) {
    return Status::Corruption("truncated header in " + path);
  }
  // Before allocating anything sized by the (untrusted) header, check
  // the file actually holds that many bytes: a corrupt edge count must
  // fail with Corruption, not OOM.
  {
    const std::istream::pos_type here = f.tellg();
    f.seekg(0, std::ios::end);
    const std::istream::pos_type end = f.tellg();
    f.seekg(here);
    if (!f || here < 0 || end < here) {
      return Status::IOError("cannot size " + path);
    }
    const uint64_t remaining = static_cast<uint64_t>(end - here);
    const uint64_t need = (static_cast<uint64_t>(num_nodes) + 1) * 8 +
                          num_edges * 4 + 8;
    if (num_edges > remaining / 4 || remaining < need) {
      return Status::Corruption("header promises more data than " + path +
                                " holds");
    }
  }
  // Re-serialize the payload while reading to verify the checksum.
  std::vector<uint8_t> payload;
  payload.reserve(12 + (static_cast<size_t>(num_nodes) + 1) * 8 +
                  num_edges * 4);
  AppendPod(&payload, num_nodes);
  AppendPod(&payload, num_edges);

  std::vector<uint64_t> offsets(static_cast<size_t>(num_nodes) + 1);
  for (uint64_t& off : offsets) {
    if (!ReadPod(f, &off)) return Status::Corruption("truncated offsets");
    AppendPod(&payload, off);
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  {
    std::vector<uint32_t> targets(num_edges);
    for (uint32_t& t : targets) {
      if (!ReadPod(f, &t)) return Status::Corruption("truncated targets");
      AppendPod(&payload, t);
    }
    // Validate structure and reconstruct edges.
    if (offsets[0] != 0 || offsets[num_nodes] != num_edges) {
      return Status::Corruption("inconsistent offsets");
    }
    for (uint32_t u = 0; u < num_nodes; ++u) {
      // The upper bound must hold before offsets[u + 1] is used as a
      // targets[] index: a corrupt middle offset can overshoot num_edges
      // while the final offset still reconciles.
      if (offsets[u + 1] < offsets[u] || offsets[u + 1] > num_edges) {
        return Status::Corruption("non-monotone offsets");
      }
      for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        if (targets[i] >= num_nodes) {
          return Status::Corruption("target out of range");
        }
        edges.push_back(Edge{u, targets[i]});
      }
    }
  }
  uint64_t stored = 0;
  if (!ReadPod(f, &stored)) return Status::Corruption("missing checksum");
  uint64_t actual = Fnv1a(payload.data(), payload.size(), kFnvOffset);
  if (stored != actual) return Status::Corruption("checksum mismatch");

  return CsrGraph::FromEdges(num_nodes, edges);
}

namespace {

constexpr char kCompressedMagic[4] = {'Q', 'R', 'K', 'C'};
constexpr uint32_t kCompressedVersion = 1;

}  // namespace

Status WriteCompressedCsr(const CompressedCsr& matrix,
                          const std::string& path) {
  std::vector<uint8_t> payload;
  payload.reserve(24 + matrix.byte_offsets().size() * 8 +
                  matrix.bytes().size());
  AppendPod(&payload, static_cast<uint32_t>(matrix.num_rows()));
  AppendPod(&payload, static_cast<uint32_t>(matrix.id_bound()));
  AppendPod(&payload, static_cast<uint64_t>(matrix.num_values()));
  AppendPod(&payload, static_cast<uint64_t>(matrix.bytes().size()));
  for (uint64_t off : matrix.byte_offsets()) AppendPod(&payload, off);
  payload.insert(payload.end(), matrix.bytes().begin(),
                 matrix.bytes().end());
  const uint64_t checksum = Fnv1a(payload.data(), payload.size(), kFnvOffset);

  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(kCompressedMagic, sizeof(kCompressedMagic));
  f.write(reinterpret_cast<const char*>(&kCompressedVersion),
          sizeof(kCompressedVersion));
  f.write(reinterpret_cast<const char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<CompressedCsr> ReadCompressedCsr(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);

  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kCompressedMagic, sizeof(kCompressedMagic)) !=
                0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version) || version != kCompressedVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  uint32_t num_rows = 0;
  uint32_t id_bound = 0;
  uint64_t num_values = 0;
  uint64_t byte_count = 0;
  if (!ReadPod(f, &num_rows) || !ReadPod(f, &id_bound) ||
      !ReadPod(f, &num_values) || !ReadPod(f, &byte_count)) {
    return Status::Corruption("truncated header in " + path);
  }
  // Hardened-reader contract: the header's counts are untrusted until
  // the file is proven to actually hold that many bytes — a corrupt
  // count must fail with Corruption, never OOM.
  {
    const std::istream::pos_type here = f.tellg();
    f.seekg(0, std::ios::end);
    const std::istream::pos_type end = f.tellg();
    f.seekg(here);
    if (!f || here < 0 || end < here) {
      return Status::IOError("cannot size " + path);
    }
    const uint64_t remaining = static_cast<uint64_t>(end - here);
    const uint64_t offsets_bytes = (static_cast<uint64_t>(num_rows) + 1) * 8;
    if (byte_count > remaining || offsets_bytes > remaining - byte_count ||
        remaining < offsets_bytes + byte_count + 8) {
      return Status::Corruption("header promises more data than " + path +
                                " holds");
    }
  }
  std::vector<uint8_t> payload;
  payload.reserve(24 + (static_cast<size_t>(num_rows) + 1) * 8 + byte_count);
  AppendPod(&payload, num_rows);
  AppendPod(&payload, id_bound);
  AppendPod(&payload, num_values);
  AppendPod(&payload, byte_count);

  std::vector<uint64_t> byte_offsets(static_cast<size_t>(num_rows) + 1);
  for (uint64_t& off : byte_offsets) {
    if (!ReadPod(f, &off)) return Status::Corruption("truncated offsets");
    AppendPod(&payload, off);
  }
  std::vector<uint8_t> bytes(byte_count);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(byte_count));
  if (!f) return Status::Corruption("truncated varint stream");
  payload.insert(payload.end(), bytes.begin(), bytes.end());

  uint64_t stored = 0;
  if (!ReadPod(f, &stored)) return Status::Corruption("missing checksum");
  const uint64_t actual = Fnv1a(payload.data(), payload.size(), kFnvOffset);
  if (stored != actual) return Status::Corruption("checksum mismatch");

  // FromParts runs ValidateRows: the varint stream never reaches the
  // unchecked fast decoder without passing the full structural check.
  return CompressedCsr::FromParts(num_rows, num_values, id_bound,
                                  std::move(byte_offsets), std::move(bytes));
}

}  // namespace qrank
