// External-id mapping: the boundary between real-world page identifiers
// (URL hashes, 64-bit crawl ids, arbitrary integers) and qrank's dense
// NodeId space.
//
// Everything inside qrank operates on dense ids in [0, num_nodes); real
// datasets rarely come that way. IdMapper assigns dense ids in first-
// seen order (so re-reading the same stream reproduces the same
// mapping), and ReadExternalEdgeList ingests headerless edge lists with
// arbitrary u64 endpoints.

#ifndef QRANK_GRAPH_ID_MAP_H_
#define QRANK_GRAPH_ID_MAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/edge_list.h"

namespace qrank {

class IdMapper {
 public:
  IdMapper() = default;

  /// Dense id for `external`, assigning the next free one if unseen.
  NodeId AddOrGet(uint64_t external);

  /// Dense id if known; NotFound otherwise. Does not modify the map.
  Result<NodeId> Lookup(uint64_t external) const;

  /// The external id that maps to dense id `node`. OutOfRange if
  /// `node` >= size().
  Result<uint64_t> External(NodeId node) const;

  NodeId size() const { return static_cast<NodeId>(to_external_.size()); }

  /// All external ids in dense-id order.
  const std::vector<uint64_t>& externals() const { return to_external_; }

 private:
  std::unordered_map<uint64_t, NodeId> to_dense_;
  std::vector<uint64_t> to_external_;
};

struct ExternalEdgeList {
  EdgeList edges;
  IdMapper mapper;
};

/// Reads a headerless text edge list "src dst" per line with arbitrary
/// u64 ids ('#' comments and blank lines skipped), mapping ids densely
/// in first-seen order. Corruption on malformed lines.
Result<ExternalEdgeList> ReadExternalEdgeList(const std::string& path);

}  // namespace qrank

#endif  // QRANK_GRAPH_ID_MAP_H_
