#include "graph/reorder.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/parallel_sort.h"
#include "graph/graph_delta.h"

namespace qrank {

namespace {

constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

// Total (in + out) degree per node without materializing the transpose.
std::vector<uint64_t> TotalDegrees(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<uint64_t> degree(n, 0);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.OutDegree(u);
  for (NodeId v : g.targets()) ++degree[v];
  return degree;
}

// Old ids sorted by total degree descending, ties by lower old id — the
// deterministic seed order shared by the hub sort and the BFS waves.
// The explicit id tie-break makes the comparator a strict total order,
// which is both what the old stable_sort-over-iota produced and what
// lets ParallelSort return the identical permutation at any thread
// count (reorder_test checks the bit-identity against a serial sort).
std::vector<NodeId> ByDegreeDescending(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  const std::vector<uint64_t> degree = TotalDegrees(g);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  ParallelSort(&order, [&](NodeId a, NodeId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });
  return order;
}

// BFS visitation order over the undirected link structure: waves seeded
// at the highest-degree unvisited node; within a node, out-neighbors in
// ascending id order first, then in-neighbors.
std::vector<NodeId> BfsOrder(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  const std::vector<NodeId> seeds = ByDegreeDescending(g);
  g.BuildTranspose();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> queue;
  queue.reserve(n);
  size_t seed_cursor = 0;
  while (order.size() < n) {
    while (visited[seeds[seed_cursor]]) ++seed_cursor;
    const NodeId seed = seeds[seed_cursor];
    visited[seed] = 1;
    queue.clear();
    queue.push_back(seed);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      order.push_back(u);
      for (NodeId v : g.OutNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          queue.push_back(v);
        }
      }
      for (NodeId v : g.InNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  return order;
}

// order[k] = old id placed at new id k  ->  perm[old] = new.
std::vector<NodeId> PermFromOrder(const std::vector<NodeId>& order) {
  std::vector<NodeId> perm(order.size());
  for (NodeId k = 0; k < order.size(); ++k) perm[order[k]] = k;
  return perm;
}

}  // namespace

const char* NodeOrderingName(NodeOrdering ordering) {
  switch (ordering) {
    case NodeOrdering::kIdentity:
      return "identity";
    case NodeOrdering::kDegreeDescending:
      return "degree";
    case NodeOrdering::kBfsLocality:
      return "bfs";
  }
  return "unknown";
}

Result<NodeOrdering> ParseNodeOrdering(std::string_view name) {
  if (name == "identity") return NodeOrdering::kIdentity;
  if (name == "degree") return NodeOrdering::kDegreeDescending;
  if (name == "bfs") return NodeOrdering::kBfsLocality;
  return Status::InvalidArgument("unknown node ordering '" +
                                 std::string(name) +
                                 "' (want identity, degree or bfs)");
}

Status ValidatePermutation(const std::vector<NodeId>& perm, NodeId n) {
  if (perm.size() != n) {
    return Status::InvalidArgument(
        "permutation has " + std::to_string(perm.size()) +
        " entries, want num_nodes = " + std::to_string(n));
  }
  std::vector<uint8_t> seen(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (perm[u] >= n) {
      return Status::InvalidArgument(
          "permutation maps node " + std::to_string(u) + " to " +
          std::to_string(perm[u]) + ", outside [0, " + std::to_string(n) +
          ")");
    }
    if (seen[perm[u]]) {
      return Status::InvalidArgument(
          "permutation is not injective: new id " + std::to_string(perm[u]) +
          " assigned twice (second time to node " + std::to_string(u) + ")");
    }
    seen[perm[u]] = 1;
  }
  return Status::OK();
}

std::vector<NodeId> IdentityPermutation(NodeId n) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  return perm;
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inverse(perm.size());
  for (NodeId u = 0; u < perm.size(); ++u) inverse[perm[u]] = u;
  return inverse;
}

std::vector<NodeId> ComposePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second) {
  QRANK_CHECK(first.size() == second.size())
      << "composed permutations must act on the same node set ("
      << first.size() << " vs " << second.size() << ")";
  std::vector<NodeId> out(first.size());
  for (NodeId u = 0; u < first.size(); ++u) out[u] = second[first[u]];
  return out;
}

Result<std::vector<NodeId>> BuildNodeOrdering(const CsrGraph& graph,
                                              NodeOrdering ordering) {
  switch (ordering) {
    case NodeOrdering::kIdentity:
      return IdentityPermutation(graph.num_nodes());
    case NodeOrdering::kDegreeDescending:
      return PermFromOrder(ByDegreeDescending(graph));
    case NodeOrdering::kBfsLocality:
      return PermFromOrder(BfsOrder(graph));
  }
  return Status::InvalidArgument("unknown NodeOrdering value");
}

Result<ReorderedGraph> ReorderGraph(const CsrGraph& graph,
                                    NodeOrdering ordering) {
  ReorderedGraph out;
  QRANK_ASSIGN_OR_RETURN(out.perm, BuildNodeOrdering(graph, ordering));
  out.inverse = InvertPermutation(out.perm);
  QRANK_ASSIGN_OR_RETURN(out.graph, graph.Permute(out.perm));
  if constexpr (kAuditLevel >= 2) {
    // The permutation and the relabeled graph are what every downstream
    // consumer (kernels, series, estimator remap) trusts; re-validate
    // bijectivity and the Permute∘Permute⁻¹ round trip before handing
    // them out.
    const Status bijective = ValidatePermutation(out.perm, graph.num_nodes());
    QRANK_CHECK(bijective.ok())
        << "built a non-bijective ordering: " << bijective.ToString();
    const Result<CsrGraph> back = out.graph.Permute(out.inverse);
    QRANK_CHECK(back.ok()) << back.status().ToString();
    QRANK_CHECK(back.value().offsets() == graph.offsets() &&
                back.value().targets() == graph.targets())
        << "Permute round trip does not reproduce the input graph under "
        << NodeOrderingName(ordering) << " ordering";
  }
  return out;
}

std::vector<double> RemapToOriginal(const std::vector<double>& permuted_scores,
                                    const std::vector<NodeId>& perm) {
  QRANK_CHECK(permuted_scores.size() == perm.size())
      << "score vector size " << permuted_scores.size()
      << " does not match permutation size " << perm.size();
  std::vector<double> out(perm.size());
  for (NodeId u = 0; u < perm.size(); ++u) out[u] = permuted_scores[perm[u]];
  return out;
}

std::vector<double> RemapToPermuted(const std::vector<double>& original_scores,
                                    const std::vector<NodeId>& perm) {
  QRANK_CHECK(original_scores.size() == perm.size())
      << "score vector size " << original_scores.size()
      << " does not match permutation size " << perm.size();
  std::vector<double> out(perm.size());
  for (NodeId u = 0; u < perm.size(); ++u) out[perm[u]] = original_scores[u];
  return out;
}

GraphDelta PermuteDelta(const GraphDelta& delta,
                        const std::vector<NodeId>& perm) {
  QRANK_CHECK(perm.size() >= delta.old_num_nodes &&
              perm.size() >= delta.new_num_nodes)
      << "permutation of size " << perm.size()
      << " cannot relabel a delta over " << delta.old_num_nodes << " -> "
      << delta.new_num_nodes << " nodes";
  GraphDelta out;
  out.old_num_nodes = delta.old_num_nodes;
  out.new_num_nodes = delta.new_num_nodes;
  auto map_edges = [&](const std::vector<Edge>& edges) {
    std::vector<Edge> mapped;
    mapped.reserve(edges.size());
    for (const Edge& e : edges) {
      mapped.push_back({perm[e.src], perm[e.dst]});
    }
    std::sort(mapped.begin(), mapped.end());
    return mapped;
  };
  out.added = map_edges(delta.added);
  out.removed = map_edges(delta.removed);
  return out;
}

}  // namespace qrank
