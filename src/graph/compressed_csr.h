// Delta-gap varint compression for sorted CSR adjacency.
//
// The pull sweep is DRAM-bound on the 1M-page workload (PR 4): every
// in-edge drags 4 bytes of source id plus its share of the 8-byte row
// offsets through the memory hierarchy. In-neighbor rows are strictly
// ascending, so gap encoding makes most edges 1-2 bytes: each row is
// stored as LEB128 varints — the first value absolute, every later
// value as the (>= 1) gap from its predecessor. BFS locality ordering
// (graph/reorder.h) shrinks the gaps further; the two optimizations
// compound.
//
// Row layout (byte_offsets[i] .. byte_offsets[i+1]):
//   varint(v_0) varint(v_1 - v_0) ... varint(v_{d-1} - v_{d-2})
// An empty row occupies zero bytes. The stream is self-delimiting: the
// decoder runs until the row's end offset, so no per-row count is
// stored.
//
// Two decoders:
//  * DecodeU32VarintUnchecked — the kernel's fast path. Only legal on a
//    stream that passed ValidateRows() (done once at build/load time).
//  * ValidateRows/CheckAgainst — the hardened path, per the PR-3/PR-5
//    reader contract: bounds-checked, rejects overlong or truncated
//    varints, out-of-range ids, non-ascending rows. Untrusted bytes
//    (ReadCompressedCsr) never reach the fast decoder unvalidated.

#ifndef QRANK_GRAPH_COMPRESSED_CSR_H_
#define QRANK_GRAPH_COMPRESSED_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "graph/edge_list.h"

namespace qrank {

class CsrGraph;

/// Fast-path LEB128 decode: reads one u32 varint at `p`, stores it in
/// `*out`, returns the first byte past it. No bounds or overflow checks
/// — callers must hold a stream that ValidateRows() accepted.
QRANK_HOT inline const uint8_t* DecodeU32VarintUnchecked(const uint8_t* p,
                                               uint32_t* out) {
  uint32_t value = *p & 0x7fu;
  uint32_t shift = 7;
  while ((*p & 0x80u) != 0) {
    ++p;
    value |= static_cast<uint32_t>(*p & 0x7fu) << shift;
    shift += 7;
  }
  ++p;
  *out = value;
  return p;
}

class CompressedCsr {
 public:
  CompressedCsr() = default;

  /// Gap-encodes `offsets`/`values` (standard CSR shape: offsets has
  /// num_rows + 1 monotone entries ending at values.size(); each row
  /// strictly ascending with every value < id_bound). InvalidArgument
  /// on any violation — encoding doubles as a structural check.
  static Result<CompressedCsr> Encode(std::span<const size_t> offsets,
                                      std::span<const NodeId> values,
                                      NodeId id_bound);

  /// Re-assembles a compressed matrix from its serialized parts
  /// (ReadCompressedCsr). Runs the full hardened validation before
  /// accepting: Corruption unless the byte offsets are monotone and
  /// end-anchored AND every row decodes cleanly to exactly
  /// `num_values` total in-range ascending values.
  static Result<CompressedCsr> FromParts(NodeId num_rows, uint64_t num_values,
                                         NodeId id_bound,
                                         std::vector<uint64_t> byte_offsets,
                                         std::vector<uint8_t> bytes);

  NodeId num_rows() const { return num_rows_; }
  uint64_t num_values() const { return num_values_; }
  /// Exclusive upper bound every stored value was checked against
  /// (num_nodes of the source graph).
  NodeId id_bound() const { return id_bound_; }

  std::span<const uint64_t> byte_offsets() const { return byte_offsets_; }
  std::span<const uint8_t> bytes() const { return bytes_; }

  uint64_t RowBytes(NodeId row) const {
    return byte_offsets_[row + 1] - byte_offsets_[row];
  }

  /// Total resident bytes of the representation: the varint stream plus
  /// the row offset array. The honest number for bytes_per_edge — the
  /// offsets are real traffic too.
  uint64_t StorageBytes() const {
    return bytes_.size() + sizeof(uint64_t) * byte_offsets_.size();
  }

  /// StorageBytes() / num_values (0 when there are no values).
  double BytesPerEdge() const {
    return num_values_ == 0
               ? 0.0
               : static_cast<double>(StorageBytes()) /
                     static_cast<double>(num_values_);
  }

  /// Fast-path decode of one full row into `out` (capacity must cover
  /// the row's degree; rows never exceed id_bound values). Returns the
  /// value count. Only legal after validation (all factory paths
  /// validate).
  size_t DecodeRow(NodeId row, NodeId* out) const;

  /// Hardened full-stream check: every row decodes to strictly
  /// ascending values < id_bound, varints are well-formed (<= 5 bytes,
  /// no u32 overflow), rows consume exactly their byte span, and the
  /// total value count matches num_values. Corruption otherwise.
  Status ValidateRows() const;

  /// Decodes every row and compares against reference CSR arrays;
  /// Internal on the first mismatch. The audit validator's oracle.
  Status CheckAgainst(std::span<const size_t> offsets,
                      std::span<const NodeId> values) const;

 private:
  NodeId num_rows_ = 0;
  uint64_t num_values_ = 0;
  NodeId id_bound_ = 0;
  std::vector<uint64_t> byte_offsets_;  // size num_rows_ + 1
  std::vector<uint8_t> bytes_;
};

/// Gap-encodes the in-neighbor (transpose) view of `graph`, building
/// the transpose first if absent. The result pairs with the kernel's
/// decode-on-the-fly pull path.
Result<CompressedCsr> CompressTranspose(const CsrGraph& graph);

}  // namespace qrank

#endif  // QRANK_GRAPH_COMPRESSED_CSR_H_
