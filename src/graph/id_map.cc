#include "graph/id_map.h"

#include <fstream>
#include <sstream>

namespace qrank {

NodeId IdMapper::AddOrGet(uint64_t external) {
  auto [it, inserted] =
      to_dense_.emplace(external, static_cast<NodeId>(to_external_.size()));
  if (inserted) to_external_.push_back(external);
  return it->second;
}

Result<NodeId> IdMapper::Lookup(uint64_t external) const {
  auto it = to_dense_.find(external);
  if (it == to_dense_.end()) {
    return Status::NotFound("unknown external id " +
                            std::to_string(external));
  }
  return it->second;
}

Result<uint64_t> IdMapper::External(NodeId node) const {
  if (node >= to_external_.size()) {
    return Status::OutOfRange("dense id out of range");
  }
  return to_external_[node];
}

Result<ExternalEdgeList> ReadExternalEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open for read: " + path);
  ExternalEdgeList out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    std::istringstream ls(line);
    uint64_t src = 0, dst = 0;
    if (!(ls >> src >> dst)) {
      return Status::Corruption("malformed edge at line " +
                                std::to_string(line_no));
    }
    // Sequence the two mappings explicitly: argument evaluation order
    // is unspecified, and first-seen-order ids must follow the file.
    NodeId dense_src = out.mapper.AddOrGet(src);
    NodeId dense_dst = out.mapper.AddOrGet(dst);
    out.edges.Add(dense_src, dense_dst);
  }
  out.edges.EnsureNodes(out.mapper.size());
  return out;
}

}  // namespace qrank
