#include "graph/analysis.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"

namespace qrank {

std::map<uint32_t, uint64_t> InDegreeDistribution(const CsrGraph& g) {
  std::map<uint32_t, uint64_t> dist;
  for (uint32_t d : g.ComputeInDegrees()) ++dist[d];
  return dist;
}

std::map<uint32_t, uint64_t> OutDegreeDistribution(const CsrGraph& g) {
  std::map<uint32_t, uint64_t> dist;
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++dist[g.OutDegree(u)];
  return dist;
}

Result<PowerLawFit> FitDegreePowerLaw(
    const std::map<uint32_t, uint64_t>& dist) {
  std::vector<double> x, y;
  for (const auto& [degree, count] : dist) {
    if (degree > 0 && count > 0) {
      x.push_back(static_cast<double>(degree));
      y.push_back(static_cast<double>(count));
    }
  }
  return FitPowerLaw(x, y);
}

SccResult ComputeScc(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  SccResult result;
  result.component.assign(n, 0);
  if (n == 0) return result;

  // Iterative Tarjan with an explicit DFS stack.
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  scc_stack.reserve(n);

  struct Frame {
    NodeId node;
    size_t next_edge;  // index into OutNeighbors(node)
  };
  std::vector<Frame> dfs;
  uint32_t next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId u = frame.node;
      auto nbrs = g.OutNeighbors(u);
      if (frame.next_edge < nbrs.size()) {
        NodeId v = nbrs[frame.next_edge++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          scc_stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back(Frame{v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          uint32_t comp = result.num_components++;
          NodeId w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            result.component[w] = comp;
          } while (w != u);
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          NodeId parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }

  result.component_size.assign(result.num_components, 0);
  for (NodeId u = 0; u < n; ++u) ++result.component_size[result.component[u]];
  uint32_t best = 0;
  for (uint32_t c = 0; c < result.num_components; ++c) {
    if (result.component_size[c] > result.component_size[best]) best = c;
  }
  result.largest_component = best;
  return result;
}

namespace {

// Marks all nodes reachable from `seeds` in graph `g`.
std::vector<bool> ReachableFrom(const CsrGraph& g,
                                const std::vector<NodeId>& seeds) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<NodeId> queue;
  for (NodeId s : seeds) {
    if (!seen[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace

BowTieResult ComputeBowTie(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  BowTieResult result;
  result.region.assign(n, BowTieRegion::kDisconnected);
  if (n == 0) return result;

  SccResult scc = ComputeScc(g);
  std::vector<NodeId> core_nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (scc.component[u] == scc.largest_component) core_nodes.push_back(u);
  }

  std::vector<bool> fwd = ReachableFrom(g, core_nodes);
  CsrGraph gt = g.Transpose();
  std::vector<bool> bwd = ReachableFrom(gt, core_nodes);

  // Weakly-connected neighborhood of CORE ∪ IN ∪ OUT distinguishes
  // tendrils from fully disconnected pieces. Build undirected reachability
  // from the union.
  std::vector<NodeId> union_nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (fwd[u] || bwd[u]) union_nodes.push_back(u);
  }
  // Undirected BFS: expand over both g and gt.
  std::vector<bool> weakly(n, false);
  std::deque<NodeId> queue;
  for (NodeId u : union_nodes) {
    weakly[u] = true;
    queue.push_back(u);
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (!weakly[v]) {
        weakly[v] = true;
        queue.push_back(v);
      }
    }
    for (NodeId v : gt.OutNeighbors(u)) {
      if (!weakly[v]) {
        weakly[v] = true;
        queue.push_back(v);
      }
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    BowTieRegion r;
    if (fwd[u] && bwd[u]) {
      r = BowTieRegion::kCore;
    } else if (bwd[u]) {
      r = BowTieRegion::kIn;  // reaches the core (via transpose search)
    } else if (fwd[u]) {
      r = BowTieRegion::kOut;
    } else if (weakly[u]) {
      r = BowTieRegion::kTendrils;
    } else {
      r = BowTieRegion::kDisconnected;
    }
    result.region[u] = r;
    switch (r) {
      case BowTieRegion::kCore:
        ++result.core_size;
        break;
      case BowTieRegion::kIn:
        ++result.in_size;
        break;
      case BowTieRegion::kOut:
        ++result.out_size;
        break;
      case BowTieRegion::kTendrils:
        ++result.tendrils_size;
        break;
      case BowTieRegion::kDisconnected:
        ++result.disconnected_size;
        break;
    }
  }
  return result;
}

std::vector<uint32_t> BfsDistances(const CsrGraph& g, NodeId source) {
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  if (source >= g.num_nodes()) return dist;
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

uint64_t CountReachable(const CsrGraph& g, NodeId source) {
  uint64_t count = 0;
  for (uint32_t d : BfsDistances(g, source)) {
    if (d != kUnreachable) ++count;
  }
  return count;
}

TransposeStorageStats ComputeTransposeStorage(const CsrGraph& g) {
  TransposeStorageStats stats;
  stats.num_edges = g.num_edges();
  g.BuildTranspose();
  // in_offsets spans num_nodes + 1 size_t entries; in_sources one
  // NodeId per edge.
  stats.raw_bytes = g.in_offsets().size() * sizeof(size_t) +
                    g.in_sources().size() * sizeof(NodeId);
  const CompressedCsr& compressed = g.BuildCompressedTranspose();
  stats.compressed_bytes = compressed.StorageBytes();
  if (stats.num_edges > 0) {
    stats.raw_bytes_per_edge = static_cast<double>(stats.raw_bytes) /
                               static_cast<double>(stats.num_edges);
    stats.compressed_bytes_per_edge = compressed.BytesPerEdge();
    stats.compression_ratio = static_cast<double>(stats.raw_bytes) /
                              static_cast<double>(stats.compressed_bytes);
  }
  return stats;
}

double AverageDegree(const CsrGraph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_nodes());
}

double Reciprocity(const CsrGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  uint64_t reciprocal = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (g.HasEdge(v, u)) ++reciprocal;
    }
  }
  return static_cast<double>(reciprocal) /
         static_cast<double>(g.num_edges());
}

Result<DiameterEstimate> EstimateDiameter(const CsrGraph& g,
                                          size_t num_samples, uint64_t seed,
                                          double quantile) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("diameter of an empty graph");
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("need at least one sample source");
  }
  if (quantile <= 0.0 || quantile > 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1]");
  }

  Rng rng(seed);
  DiameterEstimate estimate;
  // Distance histogram over reachable pairs (distance > 0).
  std::vector<uint64_t> counts;
  double sum = 0.0;
  for (size_t s = 0; s < num_samples; ++s) {
    NodeId source = static_cast<NodeId>(rng.UniformUint64(g.num_nodes()));
    for (uint32_t d : BfsDistances(g, source)) {
      if (d == kUnreachable || d == 0) continue;
      if (d >= counts.size()) counts.resize(d + 1, 0);
      ++counts[d];
      sum += d;
      ++estimate.pairs_sampled;
      estimate.max_distance_seen = std::max(estimate.max_distance_seen, d);
    }
  }
  if (estimate.pairs_sampled == 0) {
    // No reachable pairs (edgeless or fully isolated samples).
    return estimate;
  }
  estimate.mean_distance = sum / static_cast<double>(estimate.pairs_sampled);
  uint64_t target = static_cast<uint64_t>(
      quantile * static_cast<double>(estimate.pairs_sampled));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (uint32_t d = 0; d < counts.size(); ++d) {
    cum += counts[d];
    if (cum >= target) {
      estimate.effective_diameter = d;
      break;
    }
  }
  return estimate;
}

}  // namespace qrank
