// Site-level aggregation of a page graph.
//
// The paper's crawl unit is the *site* (154 sites, each mirrored up to
// 200k pages). Site-level analysis — a quotient graph whose nodes are
// sites and whose edges are cross-site links, plus aggregation of
// page scores to sites — supports the same experiments at site
// granularity and mirrors how the dataset was gathered.

#ifndef QRANK_GRAPH_SITE_GRAPH_H_
#define QRANK_GRAPH_SITE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

/// Site id type (dense, like NodeId).
using SiteId = uint32_t;

struct SiteGraphOptions {
  /// Keep intra-site links as self-referential site information? The
  /// quotient never contains self-loops (CsrGraph drops them); this
  /// flag controls whether intra-site links count toward
  /// intra_site_links statistics only.
  bool count_intra_links = true;
};

struct SiteGraph {
  /// Quotient graph over sites: edge s -> t iff any page of s links to
  /// any page of t (s != t). Parallel page links collapse.
  CsrGraph graph;
  /// Number of page-level links whose endpoints share a site.
  uint64_t intra_site_links = 0;
  /// Number of page-level links crossing sites (before collapsing).
  uint64_t cross_site_links = 0;
  /// Pages per site.
  std::vector<uint32_t> site_size;
};

/// Builds the site quotient. `site_of_page` maps every page to a site
/// id < num_sites; InvalidArgument on size mismatch or out-of-range
/// site ids.
Result<SiteGraph> BuildSiteGraph(const CsrGraph& pages,
                                 const std::vector<SiteId>& site_of_page,
                                 SiteId num_sites,
                                 const SiteGraphOptions& options = {});

/// Sums per-page scores into per-site totals. InvalidArgument on size
/// mismatch or out-of-range site ids.
Result<std::vector<double>> AggregateScoresBySite(
    const std::vector<double>& page_scores,
    const std::vector<SiteId>& site_of_page, SiteId num_sites);

/// Assigns pages round-robin to `num_sites` sites — a synthetic site
/// map for simulated webs (real deployments derive the map from URLs).
std::vector<SiteId> RoundRobinSiteAssignment(NodeId num_pages,
                                             SiteId num_sites);

}  // namespace qrank

#endif  // QRANK_GRAPH_SITE_GRAPH_H_
