#include "graph/compressed_csr.h"

#include <limits>

#include "graph/csr_graph.h"

namespace qrank {
namespace {

void AppendVarint(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Checked LEB128 decode: advances *p, never reads at or past `end`,
/// rejects overlong encodings (> 5 bytes), non-canonical encodings
/// (a final zero byte after a continuation — the value had a shorter
/// spelling, so accepting it would give one matrix many byte forms),
/// and u32 overflow.
Status DecodeU32VarintChecked(const uint8_t** p, const uint8_t* end,
                              uint32_t* out) {
  uint64_t value = 0;
  uint32_t shift = 0;
  const uint8_t* cursor = *p;
  uint8_t byte = 0;
  while (true) {
    if (cursor == end) return Status::Corruption("varint truncated");
    if (shift >= 35) return Status::Corruption("varint overlong");
    byte = *cursor++;
    value |= static_cast<uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) break;
    shift += 7;
  }
  if (byte == 0 && shift > 0) {
    return Status::Corruption("varint not canonical");
  }
  if (value > std::numeric_limits<uint32_t>::max()) {
    return Status::Corruption("varint exceeds 32 bits");
  }
  *p = cursor;
  *out = static_cast<uint32_t>(value);
  return Status::OK();
}

}  // namespace

Result<CompressedCsr> CompressedCsr::Encode(std::span<const size_t> offsets,
                                            std::span<const NodeId> values,
                                            NodeId id_bound) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != values.size()) {
    return Status::InvalidArgument(
        "CSR offsets must start at 0 and end at values.size()");
  }
  CompressedCsr c;
  c.num_rows_ = static_cast<NodeId>(offsets.size() - 1);
  c.num_values_ = values.size();
  c.id_bound_ = id_bound;
  c.byte_offsets_.resize(offsets.size());
  c.byte_offsets_[0] = 0;
  c.bytes_.reserve(values.size() * 2);  // gap-heavy rows average < 2 B
  for (NodeId row = 0; row < c.num_rows_; ++row) {
    const size_t begin = offsets[row];
    const size_t end = offsets[row + 1];
    if (end < begin) return Status::InvalidArgument("CSR offsets decrease");
    for (size_t k = begin; k < end; ++k) {
      const NodeId value = values[k];
      if (value >= id_bound) {
        return Status::InvalidArgument("CSR value out of range");
      }
      if (k == begin) {
        AppendVarint(value, &c.bytes_);
        continue;
      }
      if (value <= values[k - 1]) {
        return Status::InvalidArgument("CSR row not strictly ascending");
      }
      AppendVarint(value - values[k - 1], &c.bytes_);
    }
    c.byte_offsets_[row + 1] = c.bytes_.size();
  }
  return c;
}

Result<CompressedCsr> CompressedCsr::FromParts(
    NodeId num_rows, uint64_t num_values, NodeId id_bound,
    std::vector<uint64_t> byte_offsets, std::vector<uint8_t> bytes) {
  CompressedCsr c;
  c.num_rows_ = num_rows;
  c.num_values_ = num_values;
  c.id_bound_ = id_bound;
  c.byte_offsets_ = std::move(byte_offsets);
  c.bytes_ = std::move(bytes);
  QRANK_RETURN_NOT_OK(c.ValidateRows());
  return c;
}

size_t CompressedCsr::DecodeRow(NodeId row, NodeId* out) const {
  const uint8_t* p = bytes_.data() + byte_offsets_[row];
  const uint8_t* const end = bytes_.data() + byte_offsets_[row + 1];
  size_t count = 0;
  uint32_t prev = 0;
  while (p < end) {
    uint32_t delta;
    p = DecodeU32VarintUnchecked(p, &delta);
    prev = (count == 0) ? delta : prev + delta;
    out[count++] = prev;
  }
  return count;
}

Status CompressedCsr::ValidateRows() const {
  if (byte_offsets_.size() != static_cast<size_t>(num_rows_) + 1) {
    return Status::Corruption("byte_offsets size != num_rows + 1");
  }
  if (byte_offsets_.front() != 0 || byte_offsets_.back() != bytes_.size()) {
    return Status::Corruption("byte_offsets not anchored to the stream");
  }
  uint64_t total = 0;
  for (NodeId row = 0; row < num_rows_; ++row) {
    if (byte_offsets_[row + 1] < byte_offsets_[row]) {
      return Status::Corruption("byte_offsets decrease");
    }
    const uint8_t* p = bytes_.data() + byte_offsets_[row];
    const uint8_t* const end = bytes_.data() + byte_offsets_[row + 1];
    uint64_t prev = 0;
    bool first = true;
    while (p < end) {
      uint32_t delta;
      QRANK_RETURN_NOT_OK(DecodeU32VarintChecked(&p, end, &delta));
      if (first) {
        prev = delta;
        first = false;
      } else {
        if (delta == 0) {
          return Status::Corruption("zero gap (row not strictly ascending)");
        }
        prev += delta;  // < 2^33, no u64 overflow
      }
      if (prev >= id_bound_) {
        return Status::Corruption("decoded value out of range");
      }
      ++total;
    }
  }
  if (total != num_values_) {
    return Status::Corruption("decoded value count != num_values");
  }
  return Status::OK();
}

Status CompressedCsr::CheckAgainst(std::span<const size_t> offsets,
                                   std::span<const NodeId> values) const {
  if (offsets.size() != static_cast<size_t>(num_rows_) + 1 ||
      values.size() != num_values_) {
    return Status::Internal("compressed shape differs from reference CSR");
  }
  std::vector<NodeId> row(id_bound_, 0);
  for (NodeId r = 0; r < num_rows_; ++r) {
    const size_t count = DecodeRow(r, row.data());
    if (count != offsets[r + 1] - offsets[r]) {
      return Status::Internal("compressed row degree differs from reference");
    }
    for (size_t k = 0; k < count; ++k) {
      if (row[k] != values[offsets[r] + k]) {
        return Status::Internal("compressed row value differs from reference");
      }
    }
  }
  return Status::OK();
}

Result<CompressedCsr> CompressTranspose(const CsrGraph& graph) {
  graph.BuildTranspose();
  return CompressedCsr::Encode(graph.in_offsets(), graph.in_sources(),
                               graph.num_nodes());
}

}  // namespace qrank
