#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace qrank {

Result<EdgeList> GenerateErdosRenyi(NodeId num_nodes, double edge_prob,
                                    Rng* rng) {
  if (edge_prob < 0.0 || edge_prob > 1.0) {
    return Status::InvalidArgument("edge_prob must be in [0, 1]");
  }
  EdgeList out(num_nodes);
  if (num_nodes == 0 || edge_prob == 0.0) return out;

  const uint64_t total_pairs =
      static_cast<uint64_t>(num_nodes) * num_nodes;  // includes diagonal
  if (edge_prob >= 1.0) {
    for (NodeId u = 0; u < num_nodes; ++u) {
      for (NodeId v = 0; v < num_nodes; ++v) {
        if (u != v) out.Add(u, v);
      }
    }
    return out;
  }

  // Geometric skipping over the flattened pair index space.
  const double log_q = std::log1p(-edge_prob);
  double pos = -1.0;
  while (true) {
    double u01 = 1.0 - rng->UniformDouble();  // (0, 1]
    pos += 1.0 + std::floor(std::log(u01) / log_q);
    if (pos >= static_cast<double>(total_pairs)) break;
    uint64_t idx = static_cast<uint64_t>(pos);
    NodeId src = static_cast<NodeId>(idx / num_nodes);
    NodeId dst = static_cast<NodeId>(idx % num_nodes);
    if (src != dst) out.Add(src, dst);
  }
  out.EnsureNodes(num_nodes);
  return out;
}

Result<EdgeList> GenerateBarabasiAlbert(NodeId num_nodes, uint32_t out_degree,
                                        Rng* rng) {
  if (num_nodes < 1) return Status::InvalidArgument("need >= 1 node");
  if (out_degree < 1) return Status::InvalidArgument("out_degree must be >= 1");
  EdgeList out(num_nodes);

  // repeated[] holds one entry per (in-degree + 1) unit: node i appears
  // once at birth and once more per received link, giving the classic
  // proportional-attachment sampler in O(1) per draw.
  std::vector<NodeId> repeated;
  repeated.reserve(static_cast<size_t>(num_nodes) * (out_degree + 1));
  repeated.push_back(0);  // node 0 exists with zero in-links

  for (NodeId u = 1; u < num_nodes; ++u) {
    uint32_t links = std::min<uint32_t>(out_degree, u);
    // Sample distinct targets among existing nodes.
    std::vector<NodeId> targets;
    targets.reserve(links);
    size_t guard = 0;
    while (targets.size() < links && guard < 64u * links + 64u) {
      ++guard;
      NodeId t = repeated[rng->UniformUint64(repeated.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    // Fallback for pathological duplication: fill with uniform nodes.
    while (targets.size() < links) {
      NodeId t = static_cast<NodeId>(rng->UniformUint64(u));
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      out.Add(u, t);
      repeated.push_back(t);
    }
    repeated.push_back(u);
  }
  out.EnsureNodes(num_nodes);
  return out;
}

Result<EdgeList> GenerateSiteClustered(NodeId num_sites,
                                       NodeId pages_per_site,
                                       uint32_t intra_out_degree,
                                       uint32_t inter_links_per_site,
                                       Rng* rng) {
  if (num_sites < 2) return Status::InvalidArgument("need >= 2 sites");
  if (pages_per_site < 2) {
    return Status::InvalidArgument("need >= 2 pages per site");
  }
  const NodeId n = num_sites * pages_per_site;
  EdgeList out(n);
  out.Reserve(static_cast<size_t>(n) * (1 + intra_out_degree) +
              static_cast<size_t>(num_sites) * inter_links_per_site);
  std::vector<NodeId> repeated;
  for (NodeId s = 0; s < num_sites; ++s) {
    const NodeId base = s * pages_per_site;
    // Ring backbone: strongly connected site, no dangling pages.
    for (NodeId j = 0; j < pages_per_site; ++j) {
      out.Add(base + j, base + (j + 1) % pages_per_site);
    }
    // Preferential intra-site links (BA sampler local to the site).
    repeated.clear();
    repeated.push_back(base);
    for (NodeId j = 1; j < pages_per_site; ++j) {
      const NodeId u = base + j;
      uint32_t links = std::min<uint32_t>(intra_out_degree, j);
      for (uint32_t k = 0; k < links; ++k) {
        NodeId t = repeated[rng->UniformUint64(repeated.size())];
        if (t != u) {
          out.Add(u, t);
          repeated.push_back(t);
        }
      }
      repeated.push_back(u);
    }
    // Sparse inter-site links.
    for (uint32_t k = 0; k < inter_links_per_site; ++k) {
      NodeId src = base + static_cast<NodeId>(rng->UniformUint64(pages_per_site));
      NodeId other = static_cast<NodeId>(rng->UniformUint64(num_sites - 1));
      if (other >= s) ++other;
      NodeId dst = other * pages_per_site +
                   static_cast<NodeId>(rng->UniformUint64(pages_per_site));
      out.Add(src, dst);
    }
  }
  out.EnsureNodes(n);
  return out;
}

Result<EdgeList> GenerateCopyModel(NodeId num_nodes, uint32_t out_degree,
                                   double copy_prob, Rng* rng) {
  if (num_nodes < 1) return Status::InvalidArgument("need >= 1 node");
  if (out_degree < 1) return Status::InvalidArgument("out_degree must be >= 1");
  if (copy_prob < 0.0 || copy_prob > 1.0) {
    return Status::InvalidArgument("copy_prob must be in [0, 1]");
  }
  EdgeList out(num_nodes);
  // Adjacency for copying; kept only during generation.
  std::vector<std::vector<NodeId>> adj(num_nodes);

  for (NodeId u = 1; u < num_nodes; ++u) {
    NodeId proto = static_cast<NodeId>(rng->UniformUint64(u));
    std::vector<NodeId>& mine = adj[u];
    mine.push_back(proto);
    const std::vector<NodeId>& proto_links = adj[proto];
    for (uint32_t k = 0; mine.size() < out_degree && k < out_degree; ++k) {
      NodeId t;
      if (k < proto_links.size() && rng->Bernoulli(copy_prob)) {
        t = proto_links[k];
      } else {
        t = static_cast<NodeId>(rng->UniformUint64(u));
      }
      if (t != u && std::find(mine.begin(), mine.end(), t) == mine.end()) {
        mine.push_back(t);
      }
    }
    for (NodeId t : mine) out.Add(u, t);
  }
  out.EnsureNodes(num_nodes);
  return out;
}

Result<QualitySeededGraph> GenerateQualitySeeded(NodeId num_nodes,
                                                 uint32_t out_degree,
                                                 double quality_alpha,
                                                 double quality_beta,
                                                 double quality_strength,
                                                 Rng* rng) {
  if (num_nodes < 1) return Status::InvalidArgument("need >= 1 node");
  if (out_degree < 1) return Status::InvalidArgument("out_degree must be >= 1");
  if (quality_alpha <= 0.0 || quality_beta <= 0.0) {
    return Status::InvalidArgument("Beta parameters must be positive");
  }
  QualitySeededGraph result;
  result.edges = EdgeList(num_nodes);
  result.quality.resize(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) {
    // Clamp away from exactly 0/1 so the logistic model is well defined.
    double q = rng->Beta(quality_alpha, quality_beta);
    result.quality[i] = std::clamp(q, 1e-6, 1.0 - 1e-6);
  }

  std::vector<double> in_degree(num_nodes, 0.0);
  std::vector<double> weight(num_nodes, 0.0);
  auto node_weight = [&](NodeId i) {
    return std::pow(result.quality[i], quality_strength) *
           (in_degree[i] + 1.0);
  };

  for (NodeId u = 1; u < num_nodes; ++u) {
    uint32_t links = std::min<uint32_t>(out_degree, u);
    for (NodeId i = 0; i < u; ++i) weight[i] = node_weight(i);
    std::vector<NodeId> targets;
    targets.reserve(links);
    size_t guard = 0;
    while (targets.size() < links && guard < 64u * links + 64u) {
      ++guard;
      std::vector<double> w(weight.begin(), weight.begin() + u);
      NodeId t = static_cast<NodeId>(rng->Discrete(w));
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
        in_degree[t] += 1.0;
      }
    }
    for (NodeId t : targets) result.edges.Add(u, t);
  }
  result.edges.EnsureNodes(num_nodes);
  return result;
}

Result<EdgeList> GenerateRing(NodeId num_nodes, uint32_t out_degree) {
  if (num_nodes < 2) return Status::InvalidArgument("ring needs >= 2 nodes");
  if (out_degree < 1 || out_degree >= num_nodes) {
    return Status::InvalidArgument("out_degree must be in [1, num_nodes)");
  }
  EdgeList out(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (uint32_t k = 1; k <= out_degree; ++k) {
      out.Add(u, static_cast<NodeId>((u + k) % num_nodes));
    }
  }
  return out;
}

Result<EdgeList> GenerateStar(NodeId num_satellites) {
  if (num_satellites < 1) {
    return Status::InvalidArgument("star needs >= 1 satellite");
  }
  EdgeList out(num_satellites + 1);
  for (NodeId s = 1; s <= num_satellites; ++s) {
    out.Add(s, 0);
  }
  return out;
}

}  // namespace qrank
