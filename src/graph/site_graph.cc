#include "graph/site_graph.h"

namespace qrank {

Result<SiteGraph> BuildSiteGraph(const CsrGraph& pages,
                                 const std::vector<SiteId>& site_of_page,
                                 SiteId num_sites,
                                 const SiteGraphOptions& options) {
  (void)options;
  if (site_of_page.size() != pages.num_nodes()) {
    return Status::InvalidArgument(
        "site_of_page must have one entry per page");
  }
  if (num_sites == 0 && pages.num_nodes() > 0) {
    return Status::InvalidArgument("num_sites must be positive");
  }
  for (SiteId s : site_of_page) {
    if (s >= num_sites) {
      return Status::InvalidArgument("site id out of range");
    }
  }

  SiteGraph result;
  result.site_size.assign(num_sites, 0);
  for (SiteId s : site_of_page) ++result.site_size[s];

  EdgeList quotient(num_sites);
  for (NodeId u = 0; u < pages.num_nodes(); ++u) {
    SiteId su = site_of_page[u];
    for (NodeId v : pages.OutNeighbors(u)) {
      SiteId sv = site_of_page[v];
      if (su == sv) {
        ++result.intra_site_links;
      } else {
        ++result.cross_site_links;
        quotient.Add(su, sv);
      }
    }
  }
  quotient.EnsureNodes(num_sites);
  QRANK_ASSIGN_OR_RETURN(result.graph, CsrGraph::FromEdgeList(quotient));
  return result;
}

Result<std::vector<double>> AggregateScoresBySite(
    const std::vector<double>& page_scores,
    const std::vector<SiteId>& site_of_page, SiteId num_sites) {
  if (page_scores.size() != site_of_page.size()) {
    return Status::InvalidArgument("score/site vectors differ in size");
  }
  std::vector<double> totals(num_sites, 0.0);
  for (size_t p = 0; p < page_scores.size(); ++p) {
    if (site_of_page[p] >= num_sites) {
      return Status::InvalidArgument("site id out of range");
    }
    totals[site_of_page[p]] += page_scores[p];
  }
  return totals;
}

std::vector<SiteId> RoundRobinSiteAssignment(NodeId num_pages,
                                             SiteId num_sites) {
  std::vector<SiteId> out(num_pages, 0);
  if (num_sites == 0) return out;
  for (NodeId p = 0; p < num_pages; ++p) {
    out[p] = static_cast<SiteId>(p % num_sites);
  }
  return out;
}

}  // namespace qrank
