// Edge-list building block shared by graph construction, I/O and the
// web-evolution simulator's snapshot extraction.

#ifndef QRANK_GRAPH_EDGE_LIST_H_
#define QRANK_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qrank {

/// Dense node identifier. Graphs in qrank always use node ids in
/// [0, num_nodes); sparse external ids are mapped at the I/O boundary.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A directed edge src -> dst.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// A growable directed edge list with an explicit node-count bound.
///
/// num_nodes is a bound on ids (ids must be < num_nodes); isolated nodes
/// are represented simply by num_nodes exceeding the max referenced id.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Appends an edge, growing num_nodes if an endpoint is out of bounds.
  void Add(NodeId src, NodeId dst);

  /// Raises the node-count bound (no-op if already >= n).
  void EnsureNodes(NodeId n);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Sorts by (src, dst) and removes duplicate edges and self-loops
  /// (a page linking to itself carries no endorsement signal and is
  /// dropped at construction, matching common PageRank practice).
  void SortAndDedup(bool drop_self_loops = true);

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace qrank

#endif  // QRANK_GRAPH_EDGE_LIST_H_
