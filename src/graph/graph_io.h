// Graph serialization: text edge lists (interchange) and a compact
// binary snapshot format (fast reload of simulator output).
//
// Text format ("qrank-edges v1"):
//   # comment lines start with '#'
//   <num_nodes>              -- first non-comment line
//   <src> <dst>              -- one edge per line, whitespace separated
//
// Binary format ("QRKG" magic, little-endian):
//   magic[4] version:u32 num_nodes:u32 num_edges:u64
//   offsets[num_nodes+1]:u64 targets[num_edges]:u32 checksum:u64
// The checksum is a FNV-1a over the payload; load verifies it and fails
// with Corruption on mismatch.
//
// Compressed-matrix format ("QRKC" magic, little-endian) — a serialized
// graph/compressed_csr.h delta-gap varint matrix (typically a graph's
// compressed transpose):
//   magic[4] version:u32 num_rows:u32 id_bound:u32
//   num_values:u64 byte_count:u64
//   byte_offsets[num_rows+1]:u64 bytes[byte_count]:u8 checksum:u64
// Load follows the PR-3 hardened-reader contract: header-declared
// counts are cross-checked against the real file size BEFORE any
// allocation, the FNV-1a checksum must match, and the varint stream
// must pass CompressedCsr::ValidateRows before the matrix is returned.

#ifndef QRANK_GRAPH_GRAPH_IO_H_
#define QRANK_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace qrank {

/// Writes `edges` as a text edge list.
Status WriteEdgeListText(const EdgeList& edges, const std::string& path);

/// Reads a text edge list. Fails with Corruption on malformed lines or
/// out-of-range endpoints.
Result<EdgeList> ReadEdgeListText(const std::string& path);

/// Writes a CSR graph in the binary snapshot format.
Status WriteGraphBinary(const CsrGraph& graph, const std::string& path);

/// Reads a binary snapshot; verifies magic, version, structure and
/// checksum.
Result<CsrGraph> ReadGraphBinary(const std::string& path);

/// Writes a compressed matrix in the QRKC binary format.
Status WriteCompressedCsr(const CompressedCsr& matrix,
                          const std::string& path);

/// Reads a QRKC file; verifies magic, version, size-vs-header,
/// checksum, and fully validates the varint stream.
Result<CompressedCsr> ReadCompressedCsr(const std::string& path);

}  // namespace qrank

#endif  // QRANK_GRAPH_GRAPH_IO_H_
