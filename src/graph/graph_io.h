// Graph serialization: text edge lists (interchange) and a compact
// binary snapshot format (fast reload of simulator output).
//
// Text format ("qrank-edges v1"):
//   # comment lines start with '#'
//   <num_nodes>              -- first non-comment line
//   <src> <dst>              -- one edge per line, whitespace separated
//
// Binary format ("QRKG" magic, little-endian):
//   magic[4] version:u32 num_nodes:u32 num_edges:u64
//   offsets[num_nodes+1]:u64 targets[num_edges]:u32 checksum:u64
// The checksum is a FNV-1a over the payload; load verifies it and fails
// with Corruption on mismatch.

#ifndef QRANK_GRAPH_GRAPH_IO_H_
#define QRANK_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace qrank {

/// Writes `edges` as a text edge list.
Status WriteEdgeListText(const EdgeList& edges, const std::string& path);

/// Reads a text edge list. Fails with Corruption on malformed lines or
/// out-of-range endpoints.
Result<EdgeList> ReadEdgeListText(const std::string& path);

/// Writes a CSR graph in the binary snapshot format.
Status WriteGraphBinary(const CsrGraph& graph, const std::string& path);

/// Reads a binary snapshot; verifies magic, version, structure and
/// checksum.
Result<CsrGraph> ReadGraphBinary(const std::string& path);

}  // namespace qrank

#endif  // QRANK_GRAPH_GRAPH_IO_H_
