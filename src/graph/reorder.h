// Cache-aware node reordering.
//
// The PageRank pull sweep gathers out_share[u] in adjacency order, so
// throughput is decided by how well the node labeling packs frequently
// co-accessed pages: a crawl-order labeling scatters each site's pages
// across the score array and every gather misses cache, while a
// locality-aware relabeling turns the same edge set into near-sequential
// reads (the insight behind GAP-style reordered PageRank kernels). This
// module builds such relabelings as explicit permutations, applies them
// (CsrGraph::Permute), and maps rank vectors and GraphDeltas between the
// two label spaces so every estimator result is still reported in
// *original* page ids.
//
// Conventions: a permutation is a vector `perm` of size num_nodes with
// perm[old_id] = new_id, a bijection on [0, n). The inverse satisfies
// inverse[perm[u]] == u. Builders are fully deterministic (degree ties
// broken by lower old id; BFS visits neighbors in ascending id order),
// so a given (graph, ordering) pair always yields the same permutation.

#ifndef QRANK_GRAPH_REORDER_H_
#define QRANK_GRAPH_REORDER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

struct GraphDelta;

enum class NodeOrdering {
  kIdentity,          // keep the input labeling
  kDegreeDescending,  // hub sort: high-degree pages first
  kBfsLocality,       // BFS frontier order from high-degree seeds
};

/// Stable lowercase name ("identity", "degree", "bfs").
const char* NodeOrderingName(NodeOrdering ordering);

/// Parses the names accepted by the bench/tool --order flags.
Result<NodeOrdering> ParseNodeOrdering(std::string_view name);

/// OK iff `perm` is a bijection on [0, n): size n, every value in
/// range, no duplicates. O(n).
Status ValidatePermutation(const std::vector<NodeId>& perm, NodeId n);

std::vector<NodeId> IdentityPermutation(NodeId n);

/// inverse[perm[u]] = u. Requires a valid permutation.
std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm);

/// Composition "first, then second": out[u] = second[first[u]], the
/// permutation equivalent to relabeling by `first` and then relabeling
/// the result by `second`. Both must be bijections of the same size.
std::vector<NodeId> ComposePermutations(const std::vector<NodeId>& first,
                                        const std::vector<NodeId>& second);

/// Builds the perm (old -> new) realizing `ordering` on `graph`:
///  * kIdentity          — the identity map;
///  * kDegreeDescending  — nodes sorted by total (in + out) degree
///    descending, ties by lower old id, so hot hub rows of the pull
///    sweep's gather array pack into the first cache lines;
///  * kBfsLocality       — repeated BFS over the undirected link
///    structure, each wave seeded at the highest-degree unvisited node,
///    assigning ids in visitation order, so topologically close pages
///    (intra-site clusters) get adjacent labels.
/// kBfsLocality builds the transpose if absent (O(E)).
Result<std::vector<NodeId>> BuildNodeOrdering(const CsrGraph& graph,
                                              NodeOrdering ordering);

/// A relabeled graph together with both directions of the mapping.
struct ReorderedGraph {
  CsrGraph graph;                // relabeled: new id perm[u] holds old u
  std::vector<NodeId> perm;      // old -> new
  std::vector<NodeId> inverse;   // new -> old
};

/// BuildNodeOrdering + Permute in one step. At QRANK_AUDIT_LEVEL >= 2
/// the permutation is re-validated and round-tripped
/// (Permute(perm) then Permute(inverse) must reproduce the input
/// edge-for-edge) before the result is returned.
Result<ReorderedGraph> ReorderGraph(const CsrGraph& graph,
                                    NodeOrdering ordering);

/// Maps a score vector computed on the permuted graph back to original
/// ids: out[u] = permuted_scores[perm[u]]. Sizes must match.
std::vector<double> RemapToOriginal(const std::vector<double>& permuted_scores,
                                    const std::vector<NodeId>& perm);

/// The other direction: out[perm[u]] = original_scores[u].
std::vector<double> RemapToPermuted(const std::vector<double>& original_scores,
                                    const std::vector<NodeId>& perm);

/// Relabels a delta's edge endpoints through `perm` (which must cover
/// [0, max(old_num_nodes, new_num_nodes)) — the snapshot-series case of
/// a constant common node set) and re-sorts both edge lists, so the
/// result applies to the permuted base graph exactly when the input
/// applies to the original. Node counts are unchanged.
GraphDelta PermuteDelta(const GraphDelta& delta,
                        const std::vector<NodeId>& perm);

}  // namespace qrank

#endif  // QRANK_GRAPH_REORDER_H_
