// Synthetic Web-graph generators.
//
// The paper cites Barabasi-Albert preferential attachment [4] and the
// "winners don't take all" competition model [19] as models of the Web
// link structure; the generators here provide those reference topologies
// for unit tests, ranking benchmarks and as seed graphs for the
// web-evolution simulator.

#ifndef QRANK_GRAPH_GENERATORS_H_
#define QRANK_GRAPH_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace qrank {

/// G(n, p): each ordered pair (u, v), u != v, is an edge independently
/// with probability p. Uses geometric skipping, O(E) expected time.
Result<EdgeList> GenerateErdosRenyi(NodeId num_nodes, double edge_prob,
                                    Rng* rng);

/// Directed Barabasi-Albert: nodes arrive one at a time and emit
/// `out_degree` links to existing nodes chosen proportionally to
/// (in-degree + 1). Produces a power-law in-degree distribution.
/// Requires num_nodes >= 1.
Result<EdgeList> GenerateBarabasiAlbert(NodeId num_nodes, uint32_t out_degree,
                                        Rng* rng);

/// Linked-copy model (Kumar et al. style): each arriving node picks a
/// random prototype; every out-link of the prototype is copied with
/// probability `copy_prob`, otherwise a uniform random target is chosen.
/// Also emits one link to the prototype itself. Produces power-law
/// in-degrees with tunable exponent.
Result<EdgeList> GenerateCopyModel(NodeId num_nodes, uint32_t out_degree,
                                   double copy_prob, Rng* rng);

/// Quality-seeded generator: each node gets a latent quality drawn from
/// Beta(alpha, beta); links attach proportionally to
/// quality^strength * (in_degree + 1). This realizes the paper's world
/// view that links are *votes cast by users who like a page*, and is the
/// generator used to seed simulator populations. Returns both the graph
/// and the latent qualities.
struct QualitySeededGraph {
  EdgeList edges;
  std::vector<double> quality;  // size num_nodes, values in (0, 1)
};
Result<QualitySeededGraph> GenerateQualitySeeded(NodeId num_nodes,
                                                 uint32_t out_degree,
                                                 double quality_alpha,
                                                 double quality_beta,
                                                 double quality_strength,
                                                 Rng* rng);

/// Site-clustered Web model matching the paper's crawl shape (154 sites,
/// links predominantly intra-site): num_sites blocks of pages_per_site
/// pages each, laid out contiguously (site s owns ids
/// [s * pages_per_site, (s + 1) * pages_per_site)). Within a site, a
/// ring backbone (so no page is dangling and each site is strongly
/// connected) plus `intra_out_degree` preferential-attachment links;
/// between sites, `inter_links_per_site` links from a random member to a
/// random page of another site. Unlike a pure preferential-attachment
/// expander, perturbations here stay mostly site-local — the regime the
/// incremental snapshot pipeline is designed for.
Result<EdgeList> GenerateSiteClustered(NodeId num_sites,
                                       NodeId pages_per_site,
                                       uint32_t intra_out_degree,
                                       uint32_t inter_links_per_site,
                                       Rng* rng);

/// Deterministic ring: i -> (i + k) mod n for k in [1, out_degree].
/// Regular, strongly connected; useful as an analytic baseline (PageRank
/// is exactly uniform on it).
Result<EdgeList> GenerateRing(NodeId num_nodes, uint32_t out_degree);

/// Star: all satellites point at the hub (node 0); the hub is dangling.
/// Exercises dangling-mass handling.
Result<EdgeList> GenerateStar(NodeId num_satellites);

}  // namespace qrank

#endif  // QRANK_GRAPH_GENERATORS_H_
