#include "graph/csr_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace qrank {

Result<CsrGraph> CsrGraph::FromEdgeList(const EdgeList& edges) {
  EdgeList sorted = edges;
  sorted.SortAndDedup(/*drop_self_loops=*/true);

  CsrGraph g;
  g.num_nodes_ = sorted.num_nodes();
  g.offsets_.assign(static_cast<size_t>(g.num_nodes_) + 1, 0);
  g.dst_.reserve(sorted.num_edges());

  for (const Edge& e : sorted.edges()) {
    if (e.src >= g.num_nodes_ || e.dst >= g.num_nodes_) {
      return Status::InvalidArgument("edge endpoint out of node range");
    }
    ++g.offsets_[e.src + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  for (const Edge& e : sorted.edges()) {
    g.dst_.push_back(e.dst);
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromEdges(NodeId num_nodes,
                                     const std::vector<Edge>& edges) {
  EdgeList list(num_nodes);
  list.Reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of node range");
    }
    list.Add(e.src, e.dst);
  }
  list.EnsureNodes(num_nodes);
  return FromEdgeList(list);
}

void CsrGraph::EnsureTranspose() const {
  if (transpose_) return;
  auto cache = std::make_shared<TransposeCache>();
  cache->offsets.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  cache->src.resize(dst_.size());
  for (NodeId v : dst_) {
    ++cache->offsets[v + 1];
  }
  for (size_t i = 1; i < cache->offsets.size(); ++i) {
    cache->offsets[i] += cache->offsets[i - 1];
  }
  std::vector<size_t> cursor(cache->offsets.begin(), cache->offsets.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      cache->src[cursor[dst_[i]]++] = u;
    }
  }
  transpose_ = std::move(cache);
}

std::span<const NodeId> CsrGraph::InNeighbors(NodeId u) const {
  QRANK_DCHECK(u < num_nodes_);
  EnsureTranspose();
  return {transpose_->src.data() + transpose_->offsets[u],
          transpose_->src.data() + transpose_->offsets[u + 1]};
}

uint32_t CsrGraph::InDegree(NodeId u) const {
  EnsureTranspose();
  return static_cast<uint32_t>(transpose_->offsets[u + 1] -
                               transpose_->offsets[u]);
}

std::vector<uint32_t> CsrGraph::ComputeInDegrees() const {
  std::vector<uint32_t> deg(num_nodes_, 0);
  for (NodeId v : dst_) ++deg[v];
  return deg;
}

std::vector<NodeId> CsrGraph::DanglingNodes() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) out.push_back(u);
  }
  return out;
}

size_t CsrGraph::CountDanglingNodes() const {
  size_t count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_) return false;
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

CsrGraph CsrGraph::Transpose() const {
  EnsureTranspose();
  CsrGraph t;
  t.num_nodes_ = num_nodes_;
  t.offsets_ = transpose_->offsets;
  t.dst_ = transpose_->src;
  return t;
}

}  // namespace qrank
