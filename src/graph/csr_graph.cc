#include "graph/csr_graph.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "graph/reorder.h"

namespace qrank {

namespace {

// Parallelism only pays for its fan-out cost on large graphs; below this
// edge count every CSR routine stays on the plain serial path.
constexpr size_t kParallelEdgeThreshold = 1 << 16;

// Compile-time audit level (see common/logging.h and src/audit/):
// level 2 re-validates the full structure after every mutation.
constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

}  // namespace

Result<CsrGraph> CsrGraph::FromEdgeList(const EdgeList& edges) {
  EdgeList sorted = edges;
  sorted.SortAndDedup(/*drop_self_loops=*/true);

  CsrGraph g;
  g.num_nodes_ = sorted.num_nodes();
  g.offsets_.assign(static_cast<size_t>(g.num_nodes_) + 1, 0);
  const std::vector<Edge>& e = sorted.edges();

  for (const Edge& edge : e) {
    if (edge.src >= g.num_nodes_ || edge.dst >= g.num_nodes_) {
      return Status::InvalidArgument("edge endpoint out of node range");
    }
  }

  if (e.size() < kParallelEdgeThreshold) {
    g.dst_.reserve(e.size());
    for (const Edge& edge : e) {
      ++g.offsets_[edge.src + 1];
      g.dst_.push_back(edge.dst);
    }
  } else {
    // Degree counting races across block boundaries that split one
    // source's run; integer atomics keep the counts exact (and thus
    // thread-count independent).
    ParallelForBlocks(e.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        std::atomic_ref<size_t>(g.offsets_[e[i].src + 1]).fetch_add(
            1, std::memory_order_relaxed);
      }
    });
    // SortAndDedup already put edges in CSR order, so dst_ is a straight
    // per-index copy.
    g.dst_.resize(e.size());
    ParallelFor(e.size(), [&](size_t i) { g.dst_[i] = e[i].dst; });
  }

  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  if constexpr (kAuditLevel >= 2) {
    const Status audit = g.CheckConsistency();
    QRANK_CHECK(audit.ok())
        << "FromEdgeList built an inconsistent CSR: " << audit.ToString();
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromEdges(NodeId num_nodes,
                                     const std::vector<Edge>& edges) {
  EdgeList list(num_nodes);
  list.Reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of node range");
    }
    list.Add(e.src, e.dst);
  }
  list.EnsureNodes(num_nodes);
  return FromEdgeList(list);
}

void CsrGraph::EnsureTranspose() const {
  TransposeState& state = *transpose_;
  if (state.ready.load(std::memory_order_acquire)) return;
  // call_once serializes concurrent first builds; losers block until the
  // winner finishes and then observe the complete cache.
  std::call_once(state.once, [&] {
    BuildTransposeCache(&state.cache);
    if constexpr (kAuditLevel >= 2) {
      // Validate before publishing; the helper reads the cache directly
      // (not through InNeighbors), so no call_once re-entry.
      const Status audit = CheckTransposeAgreement(state.cache);
      QRANK_CHECK(audit.ok())
          << "transpose build produced a cache that disagrees with the "
          << "forward arrays: " << audit.ToString();
    }
    state.ready.store(true, std::memory_order_release);
  });
}

const CompressedCsr& CsrGraph::BuildCompressedTranspose() const {
  CompressedTransposeState& state = *compressed_transpose_;
  if (state.ready.load(std::memory_order_acquire)) return state.cache;
  std::call_once(state.once, [&] {
    EnsureTranspose();
    Result<CompressedCsr> encoded =
        CompressedCsr::Encode(in_offsets(), in_sources(), num_nodes_);
    // A consistent transpose always encodes: rows are strictly
    // ascending in-range source lists by construction.
    QRANK_CHECK(encoded.ok())
        << "gap-encoding the transpose failed: "
        << encoded.status().ToString();
    state.cache = std::move(encoded).value();
    if constexpr (kAuditLevel >= 2) {
      const Status audit =
          state.cache.CheckAgainst(in_offsets(), in_sources());
      QRANK_CHECK(audit.ok())
          << "compressed transpose disagrees with the transpose arrays: "
          << audit.ToString();
    }
    state.ready.store(true, std::memory_order_release);
  });
  return state.cache;
}

void CsrGraph::BuildTransposeCache(TransposeCache* cache) const {
  cache->offsets.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  cache->src.resize(dst_.size());

  if (dst_.size() < kParallelEdgeThreshold) {
    for (NodeId v : dst_) {
      ++cache->offsets[v + 1];
    }
    for (size_t i = 1; i < cache->offsets.size(); ++i) {
      cache->offsets[i] += cache->offsets[i - 1];
    }
    std::vector<size_t> cursor(cache->offsets.begin(),
                               cache->offsets.end() - 1);
    for (NodeId u = 0; u < num_nodes_; ++u) {
      for (size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        cache->src[cursor[dst_[i]]++] = u;
      }
    }
  } else {
    ParallelForBlocks(dst_.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        std::atomic_ref<size_t>(cache->offsets[dst_[i] + 1]).fetch_add(
            1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 1; i < cache->offsets.size(); ++i) {
      cache->offsets[i] += cache->offsets[i - 1];
    }
    // Scatter with per-bucket atomic cursors lands sources in an order
    // that depends on scheduling; the per-bucket sort below restores the
    // ascending-source order the serial path produces, making the final
    // arrays identical for every thread count.
    std::vector<size_t> cursor(cache->offsets.begin(),
                               cache->offsets.end() - 1);
    ParallelForBlocks(static_cast<size_t>(num_nodes_),
                      [&](size_t lo, size_t hi) {
      for (size_t u = lo; u < hi; ++u) {
        for (size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
          size_t pos = std::atomic_ref<size_t>(cursor[dst_[i]])
                           .fetch_add(1, std::memory_order_relaxed);
          cache->src[pos] = static_cast<NodeId>(u);
        }
      }
    });
    ParallelForBlocks(static_cast<size_t>(num_nodes_),
                      [&](size_t lo, size_t hi) {
      for (size_t v = lo; v < hi; ++v) {
        std::sort(cache->src.begin() + cache->offsets[v],
                  cache->src.begin() + cache->offsets[v + 1]);
      }
    });
  }
}

std::span<const size_t> CsrGraph::in_offsets() const {
  EnsureTranspose();
  return transpose_->cache.offsets;
}

std::span<const NodeId> CsrGraph::in_sources() const {
  EnsureTranspose();
  return transpose_->cache.src;
}

std::span<const NodeId> CsrGraph::InNeighbors(NodeId u) const {
  QRANK_DCHECK(u < num_nodes_);
  EnsureTranspose();
  const TransposeCache& cache = transpose_->cache;
  return {cache.src.data() + cache.offsets[u],
          cache.src.data() + cache.offsets[u + 1]};
}

uint32_t CsrGraph::InDegree(NodeId u) const {
  EnsureTranspose();
  const TransposeCache& cache = transpose_->cache;
  return static_cast<uint32_t>(cache.offsets[u + 1] - cache.offsets[u]);
}

std::vector<uint32_t> CsrGraph::ComputeInDegrees() const {
  std::vector<uint32_t> deg(num_nodes_, 0);
  for (NodeId v : dst_) ++deg[v];
  return deg;
}

std::vector<NodeId> CsrGraph::DanglingNodes() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) out.push_back(u);
  }
  return out;
}

size_t CsrGraph::CountDanglingNodes() const {
  size_t count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (OutDegree(u) == 0) ++count;
  }
  return count;
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_) return false;
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Status CsrGraph::CheckConsistency(bool check_transpose) const {
  const size_t n = num_nodes_;
  if (n == 0) {
    if (!dst_.empty()) {
      return Status::InvalidArgument("zero nodes but nonzero edge array");
    }
    return Status::OK();
  }
  if (offsets_.size() != n + 1) {
    return Status::InvalidArgument(
        "offset array size " + std::to_string(offsets_.size()) +
        " != num_nodes + 1 = " + std::to_string(n + 1));
  }
  if (offsets_[0] != 0) {
    return Status::InvalidArgument("offsets[0] != 0");
  }
  for (size_t u = 0; u < n; ++u) {
    if (offsets_[u + 1] < offsets_[u]) {
      return Status::InvalidArgument("offsets not monotone at node " +
                                     std::to_string(u));
    }
  }
  if (offsets_[n] != dst_.size()) {
    return Status::InvalidArgument("offsets total != num_edges");
  }
  for (size_t u = 0; u < n; ++u) {
    for (size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      if (dst_[i] >= n) {
        return Status::InvalidArgument("edge target out of range at node " +
                                       std::to_string(u));
      }
      if (dst_[i] == u) {
        return Status::InvalidArgument("self-loop at node " +
                                       std::to_string(u));
      }
      if (i > offsets_[u] && dst_[i] <= dst_[i - 1]) {
        return Status::InvalidArgument("adjacency not strictly ascending "
                                       "at node " +
                                       std::to_string(u));
      }
    }
  }
  if (check_transpose && has_transpose()) {
    return CheckTransposeAgreement(transpose_->cache);
  }
  return Status::OK();
}

Status CsrGraph::CheckTransposeAgreement(const TransposeCache& cache) const {
  const size_t n = num_nodes_;
  if (cache.offsets.size() != n + 1 || cache.offsets[0] != 0 ||
      cache.offsets[n] != cache.src.size() ||
      cache.src.size() != dst_.size()) {
    return Status::InvalidArgument("transpose cache shape mismatch");
  }
  std::vector<uint32_t> want_indeg = ComputeInDegrees();
  for (size_t v = 0; v < n; ++v) {
    if (cache.offsets[v + 1] < cache.offsets[v]) {
      return Status::InvalidArgument("transpose offsets not monotone");
    }
    const size_t lo = cache.offsets[v];
    const size_t hi = cache.offsets[v + 1];
    if (hi - lo != want_indeg[v]) {
      return Status::InvalidArgument(
          "transpose in-degree disagrees with forward arrays at node " +
          std::to_string(v));
    }
    for (size_t i = lo; i < hi; ++i) {
      const NodeId u = cache.src[i];
      if (u >= n || !HasEdge(u, static_cast<NodeId>(v))) {
        return Status::InvalidArgument(
            "stale transpose: cached in-edge absent from forward graph "
            "at node " +
            std::to_string(v));
      }
      if (i > lo && u <= cache.src[i - 1]) {
        return Status::InvalidArgument(
            "transpose in-adjacency not strictly ascending at node " +
            std::to_string(v));
      }
    }
  }
  return Status::OK();
}

CsrGraph CsrGraph::Transpose() const {
  EnsureTranspose();
  CsrGraph t;
  t.num_nodes_ = num_nodes_;
  t.offsets_ = transpose_->cache.offsets;
  t.dst_ = transpose_->cache.src;
  return t;
}

Result<CsrGraph> CsrGraph::Permute(const std::vector<NodeId>& perm) const {
  QRANK_RETURN_NOT_OK(ValidatePermutation(perm, num_nodes_));
  CsrGraph g;
  g.num_nodes_ = num_nodes_;
  g.offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  g.dst_.resize(dst_.size());
  // Degrees are invariant under relabeling: new row perm[u] has u's
  // out-degree. Each new row is written by exactly one old node, so the
  // fill parallelizes over old ids with disjoint writes.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.offsets_[perm[u] + 1] = OutDegree(u);
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  ParallelForBlocks(static_cast<size_t>(num_nodes_), [&](size_t lo,
                                                         size_t hi) {
    for (size_t u = lo; u < hi; ++u) {
      size_t pos = g.offsets_[perm[u]];
      const size_t row_start = pos;
      for (NodeId v : OutNeighbors(static_cast<NodeId>(u))) {
        g.dst_[pos++] = perm[v];
      }
      // Relabeling scrambles the ascending order; restore it per row.
      std::sort(g.dst_.begin() + row_start, g.dst_.begin() + pos);
    }
  });
  if constexpr (kAuditLevel >= 2) {
    const Status audit = g.CheckConsistency();
    QRANK_CHECK(audit.ok())
        << "Permute built an inconsistent CSR: " << audit.ToString();
  }
  return g;
}

}  // namespace qrank
