// Web-graph structure analytics: degree distributions and power-law fits
// ([3, 6] in the paper), strongly connected components and the "bow tie"
// decomposition of [6], and BFS reachability.

#ifndef QRANK_GRAPH_ANALYSIS_H_
#define QRANK_GRAPH_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

/// degree -> number of nodes with that degree.
std::map<uint32_t, uint64_t> InDegreeDistribution(const CsrGraph& g);
std::map<uint32_t, uint64_t> OutDegreeDistribution(const CsrGraph& g);

/// Fits P(degree = d) ~ d^exponent over the positive-degree support of
/// `dist`. Returns the log-log least-squares fit.
Result<PowerLawFit> FitDegreePowerLaw(
    const std::map<uint32_t, uint64_t>& dist);

/// Strongly connected components (iterative Tarjan). component[u] is the
/// id of u's SCC; ids are in reverse topological order of the condensation
/// (i.e., component ids of successors are <= the node's own... see impl
/// note: Tarjan emits sinks first).
struct SccResult {
  std::vector<uint32_t> component;  // size num_nodes
  uint32_t num_components = 0;
  /// Id of a largest SCC (ties broken by lowest id); kInvalidComponent
  /// when the graph is empty.
  uint32_t largest_component = 0;
  std::vector<uint32_t> component_size;  // size num_components
};
SccResult ComputeScc(const CsrGraph& g);

/// Broder et al. bow-tie decomposition relative to the largest SCC.
enum class BowTieRegion : uint8_t {
  kCore = 0,      // largest SCC
  kIn = 1,        // reaches the core, not reachable from it
  kOut = 2,       // reachable from the core, does not reach it
  kTendrils = 3,  // attached to IN or OUT but neither reaches nor reached
  kDisconnected = 4,
};
struct BowTieResult {
  std::vector<BowTieRegion> region;  // size num_nodes
  uint64_t core_size = 0;
  uint64_t in_size = 0;
  uint64_t out_size = 0;
  uint64_t tendrils_size = 0;
  uint64_t disconnected_size = 0;
};
BowTieResult ComputeBowTie(const CsrGraph& g);

/// Forward BFS from `source`; returns hop distance per node
/// (kUnreachable for unreached nodes).
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const CsrGraph& g, NodeId source);

/// Number of nodes reachable from `source` (including itself).
uint64_t CountReachable(const CsrGraph& g, NodeId source);

/// Resident-byte accounting for the two in-neighbor representations the
/// pull kernel can run over: the raw transpose arrays (8-byte row
/// offsets + 4-byte source ids) versus the delta-gap varint encoding of
/// graph/compressed_csr.h (8-byte row byte-offsets + the byte stream).
/// `bytes_per_edge` divides total resident bytes — offsets included,
/// they are real memory traffic — by the edge count, so the compression
/// win is a measured number (surfaced in qrank_audit TSV and the bench
/// JSON counters).
struct TransposeStorageStats {
  uint64_t num_edges = 0;
  uint64_t raw_bytes = 0;
  uint64_t compressed_bytes = 0;
  double raw_bytes_per_edge = 0.0;
  double compressed_bytes_per_edge = 0.0;
  /// raw_bytes / compressed_bytes (0 for edgeless graphs).
  double compression_ratio = 0.0;
};

/// Builds the transpose and its gap encoding if absent (both cached on
/// the graph), then reports the byte accounting above.
TransposeStorageStats ComputeTransposeStorage(const CsrGraph& g);

/// Mean out-degree (= mean in-degree) of the graph; 0 for empty graphs.
double AverageDegree(const CsrGraph& g);

/// Fraction of edges u->v whose reverse v->u also exists (link
/// reciprocity). 0 for edgeless graphs.
double Reciprocity(const CsrGraph& g);

/// Sampled effective-diameter estimate in the style of the "Diameter of
/// the World Wide Web" measurement the paper cites ([3]): BFS from
/// `num_samples` random sources; over all (source, reachable target)
/// pairs, report the mean distance and the `quantile` (default 0.9)
/// distance ("the effective diameter").
struct DiameterEstimate {
  double mean_distance = 0.0;
  /// Distance below which `quantile` of reachable pairs fall.
  uint32_t effective_diameter = 0;
  /// Largest finite distance seen from any sampled source.
  uint32_t max_distance_seen = 0;
  uint64_t pairs_sampled = 0;
};
/// InvalidArgument when the graph is empty or num_samples is 0.
Result<DiameterEstimate> EstimateDiameter(const CsrGraph& g,
                                          size_t num_samples, uint64_t seed,
                                          double quantile = 0.9);

}  // namespace qrank

#endif  // QRANK_GRAPH_ANALYSIS_H_
