#include "graph/graph_delta.h"

#include <algorithm>
#include <span>

#include "common/logging.h"

namespace qrank {

namespace {

// Merge-diff of two ascending neighbor lists for one source node.
void DiffAdjacency(NodeId u, std::span<const NodeId> a,
                   std::span<const NodeId> b, std::vector<Edge>* removed,
                   std::vector<Edge>* added) {
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      removed->push_back({u, a[i++]});
    } else if (i == a.size() || b[j] < a[i]) {
      added->push_back({u, b[j++]});
    } else {
      ++i;
      ++j;
    }
  }
}

bool ByDst(const Edge& a, const Edge& b) {
  return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
}

// Compile-time audit level (see common/logging.h): 1 adds cheap shape
// postconditions to ApplyDelta, 2 re-validates the whole structure
// (including a patched transpose) before the result escapes.
constexpr int kAuditLevel = QRANK_AUDIT_LEVEL;

}  // namespace

GraphDelta GraphDelta::Between(const CsrGraph& from, const CsrGraph& to) {
  GraphDelta d;
  d.old_num_nodes = from.num_nodes();
  d.new_num_nodes = to.num_nodes();
  const NodeId upper = std::max(d.old_num_nodes, d.new_num_nodes);
  for (NodeId u = 0; u < upper; ++u) {
    std::span<const NodeId> a =
        u < d.old_num_nodes ? from.OutNeighbors(u) : std::span<const NodeId>{};
    std::span<const NodeId> b =
        u < d.new_num_nodes ? to.OutNeighbors(u) : std::span<const NodeId>{};
    DiffAdjacency(u, a, b, &d.removed, &d.added);
  }
  return d;
}

Result<GraphDelta> GraphDelta::BetweenPrefix(const CsrGraph& from,
                                             const CsrGraph& to,
                                             NodeId num_nodes) {
  if (from.num_nodes() != num_nodes) {
    return Status::InvalidArgument(
        "BetweenPrefix: from.num_nodes() must equal the prefix size");
  }
  if (num_nodes > to.num_nodes()) {
    return Status::InvalidArgument("prefix larger than graph");
  }
  GraphDelta d;
  d.old_num_nodes = num_nodes;
  d.new_num_nodes = num_nodes;
  for (NodeId u = 0; u < num_nodes; ++u) {
    std::span<const NodeId> a = from.OutNeighbors(u);
    std::span<const NodeId> b = to.OutNeighbors(u);
    // Neighbor lists are ascending: the prefix restriction is a trim.
    size_t keep = static_cast<size_t>(
        std::lower_bound(b.begin(), b.end(), num_nodes) - b.begin());
    DiffAdjacency(u, a, b.subspan(0, keep), &d.removed, &d.added);
  }
  return d;
}

std::vector<int32_t> GraphDelta::OutDegreeDelta() const {
  std::vector<int32_t> delta(new_num_nodes, 0);
  for (const Edge& e : added) {
    if (e.src < new_num_nodes) ++delta[e.src];
  }
  for (const Edge& e : removed) {
    if (e.src < new_num_nodes) --delta[e.src];
  }
  return delta;
}

std::vector<uint8_t> GraphDelta::DirtyFrontier(const CsrGraph& to) const {
  QRANK_DCHECK(to.num_nodes() == new_num_nodes);
  std::vector<uint8_t> dirty(new_num_nodes, 0);
  // Pages born since the old snapshot start from nothing: always dirty.
  for (NodeId u = old_num_nodes; u < new_num_nodes; ++u) dirty[u] = 1;
  // Endpoints of every changed edge: the source's out-link set and the
  // target's in-link set both changed.
  for (const Edge& e : added) {
    if (e.src < new_num_nodes) dirty[e.src] = 1;
    if (e.dst < new_num_nodes) dirty[e.dst] = 1;
  }
  for (const Edge& e : removed) {
    if (e.src < new_num_nodes) dirty[e.src] = 1;
    if (e.dst < new_num_nodes) dirty[e.dst] = 1;
  }
  // An out-degree change rescales the share x/c a page pushes to *all*
  // its out-neighbors, so those rows' pull inputs changed too.
  std::vector<int32_t> degree_delta = OutDegreeDelta();
  for (NodeId u = 0; u < new_num_nodes; ++u) {
    if (degree_delta[u] == 0) continue;
    for (NodeId v : to.OutNeighbors(u)) dirty[v] = 1;
  }
  return dirty;
}

Result<CsrGraph> CsrGraph::ApplyDelta(const GraphDelta& delta) const {
  if (delta.old_num_nodes != num_nodes_) {
    return Status::InvalidArgument(
        "delta.old_num_nodes does not match this graph");
  }
  if (!std::is_sorted(delta.added.begin(), delta.added.end()) ||
      !std::is_sorted(delta.removed.begin(), delta.removed.end())) {
    return Status::InvalidArgument("delta edge lists must be sorted");
  }
  const NodeId n_new = delta.new_num_nodes;
  for (const Edge& e : delta.added) {
    if (e.src >= n_new || e.dst >= n_new) {
      return Status::InvalidArgument("added edge endpoint out of node range");
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument("added edge is a self-loop");
    }
  }

  CsrGraph out;
  out.num_nodes_ = n_new;
  out.offsets_.assign(static_cast<size_t>(n_new) + 1, 0);
  out.dst_.reserve(dst_.size() + delta.added.size());

  // One pass over the new node range, merging each old adjacency run
  // (minus its removed entries) with its added entries; both delta lists
  // are sorted by (src, dst), so single cursors suffice.
  size_t ai = 0, ri = 0;
  for (NodeId u = 0; u < n_new; ++u) {
    std::span<const NodeId> old_nbrs =
        u < num_nodes_ ? OutNeighbors(u) : std::span<const NodeId>{};
    size_t i = 0;
    while (i < old_nbrs.size() ||
           (ai < delta.added.size() && delta.added[ai].src == u)) {
      const bool has_add =
          ai < delta.added.size() && delta.added[ai].src == u;
      if (has_add && (i == old_nbrs.size() ||
                      delta.added[ai].dst < old_nbrs[i])) {
        out.dst_.push_back(delta.added[ai].dst);
        ++ai;
        continue;
      }
      const NodeId v = old_nbrs[i];
      if (has_add && delta.added[ai].dst == v) {
        return Status::InvalidArgument("added edge already present");
      }
      if (ri < delta.removed.size() && delta.removed[ri].src == u &&
          delta.removed[ri].dst == v) {
        ++ri;  // drop this edge
        ++i;
        continue;
      }
      if (v >= n_new) {
        return Status::InvalidArgument(
            "delta does not remove an edge to a dropped node");
      }
      out.dst_.push_back(v);
      ++i;
    }
    if (ri < delta.removed.size() && delta.removed[ri].src == u) {
      return Status::InvalidArgument("removed edge not present in graph");
    }
    out.offsets_[u + 1] = out.dst_.size();
  }
  // Remaining removed entries cover the out-edges of dropped nodes.
  for (; ri < delta.removed.size(); ++ri) {
    const Edge& e = delta.removed[ri];
    if (e.src < n_new || e.src >= num_nodes_ || !HasEdge(e.src, e.dst)) {
      return Status::InvalidArgument("removed edge not present in graph");
    }
  }
  // A dropped node whose edges were not listed would surface here.
  if (out.dst_.size() + delta.removed.size() !=
      dst_.size() + delta.added.size()) {
    return Status::InvalidArgument(
        "delta does not account for every edge of dropped nodes");
  }

  // Patch the cached transpose instead of discarding it: the successor
  // graph's in-link view is the old one with the same delta applied on
  // the in-adjacency side (edges re-sorted by (dst, src)). Engines on
  // the new graph then skip the O(E) counting-scatter rebuild.
  if (transpose_->ready.load(std::memory_order_acquire)) {
    std::vector<Edge> added_t = delta.added;
    std::vector<Edge> removed_t = delta.removed;
    std::sort(added_t.begin(), added_t.end(), ByDst);
    std::sort(removed_t.begin(), removed_t.end(), ByDst);
    const TransposeCache& old_t = transpose_->cache;
    auto state = std::make_shared<TransposeState>();
    TransposeCache& nt = state->cache;
    nt.offsets.assign(static_cast<size_t>(n_new) + 1, 0);
    nt.src.reserve(out.dst_.size());
    size_t ta = 0, tr = 0;
    for (NodeId v = 0; v < n_new; ++v) {
      std::span<const NodeId> old_in;
      if (v < num_nodes_) {
        old_in = {old_t.src.data() + old_t.offsets[v],
                  old_t.src.data() + old_t.offsets[v + 1]};
      }
      size_t i = 0;
      while (i < old_in.size() ||
             (ta < added_t.size() && added_t[ta].dst == v)) {
        const bool has_add = ta < added_t.size() && added_t[ta].dst == v;
        if (has_add &&
            (i == old_in.size() || added_t[ta].src < old_in[i])) {
          nt.src.push_back(added_t[ta].src);
          ++ta;
          continue;
        }
        const NodeId u = old_in[i];
        if (tr < removed_t.size() && removed_t[tr].dst == v &&
            removed_t[tr].src == u) {
          ++tr;
          ++i;
          continue;
        }
        // Consistency was fully validated on the out-adjacency pass.
        QRANK_DCHECK(u < n_new);
        nt.src.push_back(u);
        ++i;
      }
      nt.offsets[v + 1] = nt.src.size();
    }
    QRANK_DCHECK(nt.src.size() == out.dst_.size());
    state->ready.store(true, std::memory_order_release);
    out.transpose_ = std::move(state);
  }
  QRANK_AUDIT1(out.offsets_.front() == 0 &&
               out.offsets_.back() == out.dst_.size())
      << "ApplyDelta produced an inconsistent offset array";
  QRANK_AUDIT1(out.dst_.size() + delta.removed.size() ==
               dst_.size() + delta.added.size())
      << "ApplyDelta edge count does not match base + delta";
  if constexpr (kAuditLevel >= 2) {
    const Status audit = out.CheckConsistency();
    QRANK_CHECK(audit.ok())
        << "ApplyDelta produced an inconsistent CSR: " << audit.ToString();
  }
  return out;
}

}  // namespace qrank
