// Structural diff between consecutive graph snapshots.
//
// The paper's estimator runs over a *series* of crawl snapshots whose
// link structures overlap almost entirely (Section 8.1: 2.7 M pages
// common to four crawls). GraphDelta captures exactly what changed
// between two CsrGraphs — added/removed edges, node-count change,
// per-node out-degree deltas — so the snapshot pipeline can patch the
// previous CSR (CsrGraph::ApplyDelta) and warm-start PageRank from the
// previous vector instead of rebuilding and re-solving from scratch.
//
// Deltas are exact set differences: `added` holds edges present only in
// the newer graph, `removed` edges present only in the older one, both
// sorted by (src, dst). A delta produced by Between()/BetweenPrefix()
// always satisfies ApplyDelta's consistency contract.

#ifndef QRANK_GRAPH_GRAPH_DELTA_H_
#define QRANK_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace qrank {

struct GraphDelta {
  NodeId old_num_nodes = 0;
  NodeId new_num_nodes = 0;
  /// Edges in the new graph only, sorted by (src, dst).
  std::vector<Edge> added;
  /// Edges in the old graph only, sorted by (src, dst). When the node
  /// set shrinks, every edge incident to a dropped node appears here.
  std::vector<Edge> removed;

  bool empty() const {
    return added.empty() && removed.empty() &&
           old_num_nodes == new_num_nodes;
  }
  size_t num_changes() const { return added.size() + removed.size(); }

  /// The exact delta from `from` to `to` (any two graphs; O(E)).
  static GraphDelta Between(const CsrGraph& from, const CsrGraph& to);

  /// The delta from `from` to the subgraph of `to` induced on the id
  /// prefix [0, num_nodes) — the SnapshotSeries common-page view —
  /// without materializing the induced graph. Requires
  /// from.num_nodes() == num_nodes <= to.num_nodes().
  static Result<GraphDelta> BetweenPrefix(const CsrGraph& from,
                                          const CsrGraph& to,
                                          NodeId num_nodes);

  /// Per-node out-degree change, indexed by new-graph id
  /// (size new_num_nodes). Dropped nodes' degrees are not represented.
  std::vector<int32_t> OutDegreeDelta() const;

  /// The dirty frontier for incremental PageRank over `to` (which must
  /// be the delta's new graph): nonzero for pages whose in- or out-links
  /// changed, pages born since the old snapshot, and out-neighbors of
  /// any page whose out-degree changed (their pulled share x/c changed
  /// even though their own links did not). Size new_num_nodes.
  std::vector<uint8_t> DirtyFrontier(const CsrGraph& to) const;
};

}  // namespace qrank

#endif  // QRANK_GRAPH_GRAPH_DELTA_H_
