#include "graph/dynamic_graph.h"

#include <algorithm>

namespace qrank {

NodeId DynamicGraph::AddNode(double time) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRecord{time});
  live_.emplace_back();
  return id;
}

NodeId DynamicGraph::AddNodes(size_t count, double time) {
  NodeId first = static_cast<NodeId>(nodes_.size());
  nodes_.resize(nodes_.size() + count, NodeRecord{time});
  live_.resize(live_.size() + count);
  return first;
}

Status DynamicGraph::AddEdge(NodeId src, NodeId dst, double time) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  auto& bucket = live_[src];
  if (bucket.find(dst) != bucket.end()) {
    return Status::AlreadyExists("live edge already present");
  }
  bucket.emplace(dst, events_.size());
  events_.push_back(EdgeEvent{src, dst, time,
                              std::numeric_limits<double>::infinity()});
  ++live_count_;
  last_event_time_ = std::max(last_event_time_, time);
  return Status::OK();
}

bool DynamicGraph::HasLiveEdge(NodeId src, NodeId dst) const {
  if (src >= live_.size()) return false;
  return live_[src].find(dst) != live_[src].end();
}

Status DynamicGraph::RemoveEdge(NodeId src, NodeId dst, double time) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  auto& bucket = live_[src];
  auto it = bucket.find(dst);
  if (it == bucket.end()) {
    return Status::NotFound("no live edge to remove");
  }
  events_[it->second].remove_time = time;
  bucket.erase(it);
  --live_count_;
  last_event_time_ = std::max(last_event_time_, time);
  return Status::OK();
}

NodeId DynamicGraph::NumNodesAt(double t) const {
  // Birth times are non-decreasing in id order; binary-search the prefix.
  auto it = std::upper_bound(
      nodes_.begin(), nodes_.end(), t,
      [](double t_val, const NodeRecord& n) { return t_val < n.birth_time; });
  return static_cast<NodeId>(it - nodes_.begin());
}

EdgeList DynamicGraph::EdgesAt(double t) const {
  EdgeList out(NumNodesAt(t));
  for (const EdgeEvent& e : events_) {
    if (e.create_time <= t && t < e.remove_time) {
      out.Add(e.src, e.dst);
    }
  }
  return out;
}

Result<CsrGraph> DynamicGraph::SnapshotAt(double t) const {
  return CsrGraph::FromEdgeList(EdgesAt(t));
}

}  // namespace qrank
