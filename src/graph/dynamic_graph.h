// Mutable, timestamped directed graph: the evolving Web.
//
// DynamicGraph records when each page (node) was created and when each
// link (edge) was created or removed, so the snapshot at any time t can
// be reconstructed exactly — this is the in-memory equivalent of the
// paper's "download the Web multiple times". Ranking algorithms never
// operate on DynamicGraph directly; they consume immutable CsrGraph
// snapshots extracted with SnapshotAt().

#ifndef QRANK_GRAPH_DYNAMIC_GRAPH_H_
#define QRANK_GRAPH_DYNAMIC_GRAPH_H_

#include <limits>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace qrank {

/// Snapshot of one node's lifetime (used by tests and analytics).
struct NodeRecord {
  double birth_time = 0.0;
};

/// One timestamped link event.
struct EdgeEvent {
  NodeId src = 0;
  NodeId dst = 0;
  double create_time = 0.0;
  /// +inf while the edge is live.
  double remove_time = std::numeric_limits<double>::infinity();
};

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Adds a node born at `time`; returns its id (dense, increasing).
  NodeId AddNode(double time);

  /// Adds `count` nodes born at `time`; returns the first new id.
  NodeId AddNodes(size_t count, double time);

  /// Creates edge src->dst at `time`. Fails on unknown endpoints, on a
  /// self-loop, or if the live edge already exists (link creation in the
  /// user model is idempotent: a user links a page at most once).
  Status AddEdge(NodeId src, NodeId dst, double time);

  /// True if src->dst is currently live.
  bool HasLiveEdge(NodeId src, NodeId dst) const;

  /// Marks a live edge removed at `time` (the "forgetting" extension of
  /// Section 9.1). NotFound if no live src->dst edge exists.
  Status RemoveEdge(NodeId src, NodeId dst, double time);

  NodeId num_nodes() const { return static_cast<NodeId>(nodes_.size()); }
  size_t num_edge_events() const { return events_.size(); }
  /// Number of currently-live edges.
  size_t num_live_edges() const { return live_count_; }

  double NodeBirthTime(NodeId u) const { return nodes_[u].birth_time; }
  const std::vector<EdgeEvent>& edge_events() const { return events_; }

  /// Edge list of the graph as it existed at time t: nodes born at or
  /// before t, edges with create_time <= t < remove_time. Node ids are
  /// preserved (num_nodes of the result counts only the born prefix).
  EdgeList EdgesAt(double t) const;

  /// CSR snapshot at time t (see EdgesAt).
  Result<CsrGraph> SnapshotAt(double t) const;

  /// Nodes born at or before t, in id order. Ids are assigned in birth
  /// order, so this is always a prefix [0, k).
  NodeId NumNodesAt(double t) const;

 private:
  std::vector<NodeRecord> nodes_;
  std::vector<EdgeEvent> events_;
  // Live-edge index: src -> (dst -> index into events_).
  std::vector<std::unordered_map<NodeId, size_t>> live_;
  size_t live_count_ = 0;
  double last_event_time_ = 0.0;
};

}  // namespace qrank

#endif  // QRANK_GRAPH_DYNAMIC_GRAPH_H_
