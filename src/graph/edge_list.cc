#include "graph/edge_list.h"

#include <algorithm>

namespace qrank {

void EdgeList::Add(NodeId src, NodeId dst) {
  NodeId needed = std::max(src, dst) + 1;
  if (needed > num_nodes_) num_nodes_ = needed;
  edges_.push_back(Edge{src, dst});
}

void EdgeList::EnsureNodes(NodeId n) {
  if (n > num_nodes_) num_nodes_ = n;
}

void EdgeList::SortAndDedup(bool drop_self_loops) {
  if (drop_self_loops) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge& e) { return e.src == e.dst; }),
                 edges_.end());
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

}  // namespace qrank
