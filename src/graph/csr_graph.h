// Immutable compressed-sparse-row directed graph.
//
// CsrGraph is the representation every ranking algorithm consumes: two
// flat arrays (offsets + neighbor ids) give sequential memory access in
// the PageRank inner loop and zero per-node allocation. The transpose
// (in-link view) is built lazily on demand and cached, since PageRank's
// pull formulation and HITS both need it.

#ifndef QRANK_GRAPH_CSR_GRAPH_H_
#define QRANK_GRAPH_CSR_GRAPH_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/edge_list.h"

namespace qrank {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list. Duplicate edges and self-loops are removed
  /// (footnote: a self-link is not an endorsement). Fails with
  /// InvalidArgument if any endpoint id >= edges.num_nodes().
  static Result<CsrGraph> FromEdgeList(const EdgeList& edges);

  /// Convenience: builds from raw (src, dst) pairs with `num_nodes` nodes.
  static Result<CsrGraph> FromEdges(NodeId num_nodes,
                                    const std::vector<Edge>& edges);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return dst_.size(); }

  /// Out-neighbors of `u` in ascending id order.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {dst_.data() + offsets_[u], dst_.data() + offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// In-neighbors of `u` (from the cached transpose; builds it on first
  /// use — O(E)).
  std::span<const NodeId> InNeighbors(NodeId u) const;

  uint32_t InDegree(NodeId u) const;

  /// All in-degrees without materializing the transpose (O(E) each call).
  std::vector<uint32_t> ComputeInDegrees() const;

  /// Nodes with no out-links ("dangling" pages; footnote 2 of the paper).
  std::vector<NodeId> DanglingNodes() const;
  size_t CountDanglingNodes() const;

  /// True if edge u->v exists (binary search over OutNeighbors, O(log d)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// The transposed graph as an independent CsrGraph (O(E)).
  CsrGraph Transpose() const;

  /// Builds the cached transpose now if absent. The lazy build in
  /// InNeighbors()/InDegree() is not thread-safe; parallel algorithms
  /// call this once before fanning out readers.
  void BuildTranspose() const { EnsureTranspose(); }

  /// Raw CSR arrays, exposed for tight analytic loops.
  const std::vector<size_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& targets() const { return dst_; }

 private:
  void EnsureTranspose() const;

  NodeId num_nodes_ = 0;
  std::vector<size_t> offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> dst_;      // size num_edges

  // Lazily built transpose arrays, shared so copies stay cheap and a copy
  // made after the build reuses the cache.
  struct TransposeCache {
    std::vector<size_t> offsets;
    std::vector<NodeId> src;
  };
  mutable std::shared_ptr<const TransposeCache> transpose_;
};

}  // namespace qrank

#endif  // QRANK_GRAPH_CSR_GRAPH_H_
