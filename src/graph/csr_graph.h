// Immutable compressed-sparse-row directed graph.
//
// CsrGraph is the representation every ranking algorithm consumes: two
// flat arrays (offsets + neighbor ids) give sequential memory access in
// the PageRank inner loop and zero per-node allocation. The transpose
// (in-link view) is built lazily on demand and cached, since PageRank's
// pull formulation and HITS both need it. The lazy build is guarded by
// std::call_once, so concurrent ranking engines may request the in-link
// view of a shared graph without external synchronization.

#ifndef QRANK_GRAPH_CSR_GRAPH_H_
#define QRANK_GRAPH_CSR_GRAPH_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/compressed_csr.h"
#include "graph/edge_list.h"

namespace qrank {

struct GraphDelta;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list. Duplicate edges and self-loops are removed
  /// (footnote: a self-link is not an endorsement). Fails with
  /// InvalidArgument if any endpoint id >= edges.num_nodes().
  static Result<CsrGraph> FromEdgeList(const EdgeList& edges);

  /// Convenience: builds from raw (src, dst) pairs with `num_nodes` nodes.
  static Result<CsrGraph> FromEdges(NodeId num_nodes,
                                    const std::vector<Edge>& edges);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return dst_.size(); }

  /// Out-neighbors of `u` in ascending id order.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {dst_.data() + offsets_[u], dst_.data() + offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// In-neighbors of `u` (from the cached transpose; builds it on first
  /// use — O(E)). Thread-safe: concurrent first calls build exactly once.
  std::span<const NodeId> InNeighbors(NodeId u) const;

  uint32_t InDegree(NodeId u) const;

  /// All in-degrees without materializing the transpose (O(E) each call).
  std::vector<uint32_t> ComputeInDegrees() const;

  /// Nodes with no out-links ("dangling" pages; footnote 2 of the paper).
  std::vector<NodeId> DanglingNodes() const;
  size_t CountDanglingNodes() const;

  /// True if edge u->v exists (binary search over OutNeighbors, O(log d)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// The transposed graph as an independent CsrGraph (O(E)).
  CsrGraph Transpose() const;

  /// Relabels every node: old id u becomes perm[u]. `perm` must be a
  /// bijection on [0, num_nodes) (InvalidArgument otherwise — see
  /// ValidatePermutation in graph/reorder.h). Adjacency rows are
  /// re-sorted so the result satisfies the usual CSR invariants; the
  /// transpose cache is not carried over (the permuted graph rebuilds
  /// it lazily). Permute(perm) followed by Permute(inverse) round-trips
  /// to an identical graph. O(E log d).
  Result<CsrGraph> Permute(const std::vector<NodeId>& perm) const;

  /// Builds the cached transpose now if absent. Safe to call
  /// concurrently (std::call_once); parallel algorithms call it before
  /// fanning out readers so the O(E) build lands outside timed regions.
  void BuildTranspose() const { EnsureTranspose(); }

  /// True if the lazy transpose has been built (or patched in by
  /// ApplyDelta) — i.e. InNeighbors() is O(1) from here on.
  bool has_transpose() const {
    return transpose_->ready.load(std::memory_order_acquire);
  }

  /// Builds (and caches) the delta-gap compressed transpose — the
  /// representation the kernel's decode-on-the-fly pull path reads
  /// (see graph/compressed_csr.h). Builds the plain transpose first if
  /// absent. Same std::call_once discipline as BuildTranspose: safe to
  /// call concurrently, built exactly once, and the O(E) encode lands
  /// outside timed sweeps when callers warm it up front. The returned
  /// reference stays valid while any copy of this graph lives.
  const CompressedCsr& BuildCompressedTranspose() const;

  /// True if the compressed transpose cache has been built.
  bool has_compressed_transpose() const {
    return compressed_transpose_->ready.load(std::memory_order_acquire);
  }

  /// Applies a structural delta (see graph/graph_delta.h), producing the
  /// successor snapshot's graph in O(E + |delta|) — no edge sort, no
  /// degree-count scatter. If this graph's transpose cache is built, the
  /// successor's transpose is patched from it instead of being discarded,
  /// so ranking engines on the new graph skip the O(E) rebuild.
  ///
  /// The delta must be exact: every removed edge must exist, no added
  /// edge may already exist, and a shrinking delta must list every edge
  /// incident to a dropped node — InvalidArgument otherwise. Rebuilding
  /// from scratch (FromEdgeList) remains the correctness oracle.
  Result<CsrGraph> ApplyDelta(const GraphDelta& delta) const;

  /// Raw CSR arrays, exposed for tight analytic loops.
  const std::vector<size_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& targets() const { return dst_; }

  /// Raw cached-transpose arrays (in-edge CSR: row starts + sources),
  /// for pull kernels that want pointer-chasing-free inner loops with
  /// no per-row synchronization. Builds the transpose on first use.
  std::span<const size_t> in_offsets() const;
  std::span<const NodeId> in_sources() const;

  /// Structural self-check, O(E): monotone offsets with leading zero and
  /// total num_edges, in-range strictly-ascending self-loop-free
  /// adjacency; when `check_transpose` and the cached transpose is
  /// built, also verifies the cache agrees with the forward arrays
  /// edge-for-edge. Returns the first violation as InvalidArgument.
  ///
  /// This is the Status-form invariant core that the compile-time
  /// QRANK_AUDIT_LEVEL hooks run after each mutation; the audit library
  /// (src/audit/) layers named per-validator reports on top of the same
  /// rules for the CLI and the mutation tests.
  Status CheckConsistency(bool check_transpose = true) const;

 private:
  // Test-only backdoor (tests/audit/) used to seed targeted corruptions
  // the mutation tests prove the validators catch. Never used by
  // library code.
  friend struct CsrGraphTestAccess;
  void EnsureTranspose() const;

  NodeId num_nodes_ = 0;
  std::vector<size_t> offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> dst_;      // size num_edges

  struct TransposeCache {
    std::vector<size_t> offsets;
    std::vector<NodeId> src;
  };
  void BuildTransposeCache(TransposeCache* cache) const;
  // Transpose half of CheckConsistency, callable on a not-yet-published
  // cache (the audit-level-2 hook inside the lazy build).
  Status CheckTransposeAgreement(const TransposeCache& cache) const;

  // Lazily built transpose, shared between copies so copies stay cheap
  // and a copy made after (or during) the build reuses the cache. `once`
  // serializes the lazy build across threads; `ready` is the fast-path
  // flag (release-published after the build, so readers that observe it
  // see a complete cache). The state object is allocated at construction
  // and the pointer never reseated, so concurrent readers + copiers of a
  // const graph are race-free.
  struct TransposeState {
    std::once_flag once;
    std::atomic<bool> ready{false};
    TransposeCache cache;
  };
  mutable std::shared_ptr<TransposeState> transpose_ =
      std::make_shared<TransposeState>();

  // Lazily gap-encoded transpose, same lifetime/publication story as
  // TransposeState. Never carried across ApplyDelta/Permute — the
  // successor re-encodes lazily (encoding is O(E), cheaper than the
  // transpose build it depends on).
  struct CompressedTransposeState {
    std::once_flag once;
    std::atomic<bool> ready{false};
    CompressedCsr cache;
  };
  mutable std::shared_ptr<CompressedTransposeState> compressed_transpose_ =
      std::make_shared<CompressedTransposeState>();
};

}  // namespace qrank

#endif  // QRANK_GRAPH_CSR_GRAPH_H_
