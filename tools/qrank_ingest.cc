// qrank_ingest: drive and inspect the continuous-ingest pipeline
// (src/ingest/) from the command line.
//
// Usage:
//   qrank_ingest drive   [--sites=N] [--pages-per-site=N] [--events=N]
//                        [--producers=N] [--batch-events=N]
//                        [--batch-age-ms=X] [--capacity=N] [--reject]
//                        [--seed=N] [--out=PATH] [--serial]
//                        [--export-threads=N]
//                        [--partition=node|edge] [--kernel=NAME]
//                        [--compressed=BOOL]
//   qrank_ingest inspect [same flags]
//
// The solver knobs are the shared set from rank/solver_flags.h and
// configure the per-batch delta solves. --order is deliberately NOT
// accepted here: this tool's site_of callback derives each page's site
// from id arithmetic, so a relabeling would silently reassign pages to
// sites.
//
// Both subcommands run the same experiment: seed a site-clustered web,
// start the IngestService against a SnapshotStore, race N producer
// threads feeding a random edge-add / edge-remove / visit mix through
// the bounded queue, wait until everything accepted is servable, and
// stop.
//
// `drive` prints the operator view: queue counters, batch/generation
// counts, the update-to-servable latency distribution (p50/p90/p99/
// max) — the bounded-staleness numbers bench_perf_ingest gates in CI —
// and the per-stage apply/solve/estimate/export/publish breakdown from
// the pipelined service, so a latency regression points at its stage.
// --serial runs the pre-pipeline inline export path for comparison;
// --export-threads caps the parallel bundle export (0 = all cores).
// `inspect` prints the audit view: one TSV row per published generation
// (generation, sequence range, events, net delta, pages, solver work,
// worst in-batch staleness) — the provenance trail behind the
// no-lost-updates contract. --out writes the final published bundle
// image for `qrank_serve inspect/query`.
//
// Exit status: 0 = success, 1 = pipeline or audit failure, 2 = usage.

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "ingest/ingest_service.h"
#include "rank/solver_flags.h"
#include "serve/snapshot_store.h"

namespace qrank {
namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: qrank_ingest drive   [--sites=N] [--pages-per-site=N]\n"
        "                            [--events=N] [--producers=N]\n"
        "                            [--batch-events=N] [--batch-age-ms=X]\n"
        "                            [--capacity=N] [--reject] [--seed=N]\n"
        "                            [--out=PATH] [--serial]\n"
        "                            [--export-threads=N]\n"
        "                            [--partition=node|edge]\n"
        "                            [--kernel=scalar|simd|avx2|avx512]\n"
        "                            [--compressed=BOOL]\n"
        "       qrank_ingest inspect [same flags]\n"
        "(no --order here: site_of derives sites from id arithmetic)\n";
}

struct DriveConfig {
  SiteId sites = 32;
  NodeId pages_per_site = 50;
  int64_t events = 20000;
  int64_t producers = 2;
  size_t batch_events = 512;
  double batch_age_ms = 10.0;
  size_t capacity = 1 << 14;
  bool reject = false;
  bool serial = false;       // true = pre-pipeline inline export path
  int export_threads = 0;    // 0 = all cores
  uint64_t seed = 1;
  std::string out;
  DeltaPageRankOptions rank = DefaultIngestRankOptions();
};

struct DriveOutcome {
  IngestStats stats;
  std::vector<IngestGenerationInfo> log;
  std::vector<uint8_t> image;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
};

Result<DriveOutcome> RunDrive(const DriveConfig& cfg) {
  Rng seed_rng(cfg.seed);
  QRANK_ASSIGN_OR_RETURN(
      EdgeList seed_edges,
      GenerateSiteClustered(cfg.sites, cfg.pages_per_site, 8, 4, &seed_rng));
  QRANK_ASSIGN_OR_RETURN(CsrGraph seed_graph,
                         CsrGraph::FromEdgeList(seed_edges));

  SnapshotStore store;
  IngestOptions options;
  options.queue.capacity = cfg.capacity;
  options.queue.backpressure = cfg.reject ? BackpressurePolicy::kReject
                                          : BackpressurePolicy::kBlock;
  options.batch.max_events = cfg.batch_events;
  options.batch.max_age = std::chrono::nanoseconds(
      static_cast<int64_t>(cfg.batch_age_ms * 1e6));
  options.num_sites = cfg.sites;
  const NodeId pages_per_site = cfg.pages_per_site;
  const SiteId sites = cfg.sites;
  options.site_of = [pages_per_site, sites](NodeId page) {
    return static_cast<SiteId>((page / pages_per_site) % sites);
  };
  options.rank = cfg.rank;
  options.pipelined = !cfg.serial;
  options.export_parallel.num_threads = cfg.export_threads;
  options.keep_last_image = !cfg.out.empty();
  QRANK_ASSIGN_OR_RETURN(
      std::unique_ptr<IngestService> service,
      IngestService::Create(std::move(seed_graph), &store,
                            std::move(options)));
  QRANK_RETURN_NOT_OK(service->Start());

  const NodeId id_space =
      static_cast<NodeId>(cfg.sites) * cfg.pages_per_site + 64;
  std::vector<uint64_t> rejected_per(cfg.producers, 0);
  std::vector<std::thread> producers;
  const int64_t per_producer = cfg.events / cfg.producers;
  for (int64_t p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(cfg.seed * 7919 + static_cast<uint64_t>(p) + 1);
      for (int64_t i = 0; i < per_producer; ++i) {
        const NodeId u = static_cast<NodeId>(rng.NextUint64() % id_space);
        const NodeId v = static_cast<NodeId>(rng.NextUint64() % id_space);
        const uint64_t roll = rng.NextUint64() % 100;
        Status st;
        if (roll < 50) {
          st = service->EnqueueEdgeAdd(u, v);
        } else if (roll < 75) {
          st = service->EnqueueEdgeRemove(u, v);
        } else {
          st = service->EnqueueVisit(u);
        }
        if (!st.ok()) ++rejected_per[p];  // kReject load shedding
      }
    });
  }
  for (std::thread& t : producers) t.join();

  DriveOutcome out;
  out.accepted = service->queue().Stats().enqueued;
  if (out.accepted > 0 &&
      !service->WaitServable(out.accepted, std::chrono::seconds(300))) {
    return Status::Internal("timed out waiting for servability");
  }
  QRANK_RETURN_NOT_OK(service->Stop());
  for (uint64_t r : rejected_per) out.rejected += r;
  out.stats = service->Stats();
  out.log = service->GenerationLog();
  out.image = service->LastImage();
  return out;
}

Result<DriveConfig> ConfigFromFlags(FlagParser& flags) {
  DriveConfig cfg;
  cfg.sites = static_cast<SiteId>(flags.GetInt("sites", 32));
  cfg.pages_per_site =
      static_cast<NodeId>(flags.GetInt("pages-per-site", 50));
  cfg.events = flags.GetInt("events", 20000);
  cfg.producers = flags.GetInt("producers", 2);
  cfg.batch_events = static_cast<size_t>(flags.GetInt("batch-events", 512));
  cfg.batch_age_ms = flags.GetDouble("batch-age-ms", 10.0);
  cfg.capacity = static_cast<size_t>(flags.GetInt("capacity", 1 << 14));
  cfg.reject = flags.GetBool("reject", false);
  cfg.serial = flags.GetBool("serial", false);
  cfg.export_threads =
      static_cast<int>(flags.GetInt("export-threads", 0));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.out = flags.GetString("out", "");
  QRANK_RETURN_NOT_OK(ApplySolverFlags(flags, &cfg.rank.base));
  QRANK_RETURN_NOT_OK(flags.status());
  if (cfg.sites == 0 || cfg.pages_per_site == 0 || cfg.events <= 0 ||
      cfg.producers <= 0) {
    return Status::InvalidArgument("sites/pages/events/producers must be > 0");
  }
  return cfg;
}

int Finish(const DriveConfig& cfg, const DriveOutcome& outcome) {
  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(outcome.image.data()),
            static_cast<std::streamsize>(outcome.image.size()));
    if (!f) {
      std::cerr << "qrank_ingest: cannot write " << cfg.out << "\n";
      return 1;
    }
    std::printf("wrote final bundle image to %s (%zu bytes)\n",
                cfg.out.c_str(), outcome.image.size());
  }
  // Exit-status honesty: the run only counts as clean when the queue
  // ledger conserves and every accepted event is servable.
  const UpdateQueueStats& q = outcome.stats.queue;
  const AuditReport audit =
      AuditIngestQueue(q.capacity, q.depth, q.enqueued, q.dequeued,
                       q.rejected);
  if (!audit.ok() || outcome.stats.servable_sequence != outcome.accepted) {
    std::cerr << "qrank_ingest: pipeline audit failed\n"
              << audit.ToString();
    return 1;
  }
  return 0;
}

int CmdDrive(const DriveConfig& cfg, const DriveOutcome& outcome) {
  const IngestStats& s = outcome.stats;
  std::printf("accepted        %" PRIu64 " events (%" PRIu64 " rejected)\n",
              outcome.accepted, outcome.rejected);
  std::printf("processed       %" PRIu64 " (adds %" PRIu64 ", removes %"
              PRIu64 ", visits %" PRIu64 ")\n",
              s.events_processed, s.edge_adds, s.edge_removes, s.visits);
  std::printf("batches         %" PRIu64 " -> %" PRIu64
              " generations (net delta edges %" PRIu64 ")\n",
              s.batches, s.generations, s.delta_edges_applied);
  std::printf("solver          %" PRIu64 " node updates\n",
              s.rank_node_updates);
  std::printf("queue           depth %" PRIu64 "/%" PRIu64
              " (max %" PRIu64 "), enqueued %" PRIu64 ", dequeued %" PRIu64
              "\n",
              s.queue.depth, s.queue.capacity, s.queue.max_depth,
              s.queue.enqueued, s.queue.dequeued);
  std::printf("update->servable  n=%" PRIu64
              "  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n",
              s.latency_count, s.latency_p50_ms, s.latency_p90_ms,
              s.latency_p99_ms, s.latency_max_ms);
  // Per-stage breakdown: where each generation's latency went. With the
  // pipelined service, apply+solve run on the consumer thread while
  // estimate/export/publish run on the exporter — the two groups
  // overlap across consecutive batches, so the stage sums exceed the
  // end-to-end number by design.
  const struct {
    const char* name;
    const IngestStageStats& st;
  } stages[] = {
      {"apply", s.stage_apply},       {"solve", s.stage_solve},
      {"estimate", s.stage_estimate}, {"export", s.stage_export},
      {"publish", s.stage_publish},
  };
  for (const auto& stage : stages) {
    std::printf("  stage %-8s n=%" PRIu64
                "  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n",
                stage.name, stage.st.count, stage.st.p50_ms,
                stage.st.p90_ms, stage.st.p99_ms, stage.st.max_ms);
  }
  return Finish(cfg, outcome);
}

int CmdInspect(const DriveConfig& cfg, const DriveOutcome& outcome) {
  std::printf(
      "generation\tfirst_seq\tlast_seq\tevents\tadded\tremoved\tpages\t"
      "iterations\tnode_updates\tmax_staleness_ms\n");
  for (const IngestGenerationInfo& g : outcome.log) {
    std::printf("%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%"
                PRIu64 "\t%" PRIu64 "\t%u\t%u\t%" PRIu64 "\t%.3f\n",
                g.generation, g.first_sequence, g.last_sequence,
                g.num_events, g.delta_added, g.delta_removed, g.num_pages,
                g.rank_iterations, g.rank_node_updates,
                g.max_update_to_servable_ms);
  }
  return Finish(cfg, outcome);
}

int Run(int argc, const char* const* argv) {
  if (argc < 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  FlagParser flags(argc - 1, argv + 1);
  if (!flags.positional().empty() ||
      (command != "drive" && command != "inspect")) {
    PrintUsage(std::cerr);
    return 2;
  }
  Result<DriveConfig> cfg = ConfigFromFlags(flags);
  if (!cfg.ok()) {
    std::cerr << "qrank_ingest: " << cfg.status().ToString() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::cerr << "qrank_ingest: unknown flag --" << unused.front() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  Result<DriveOutcome> outcome = RunDrive(cfg.value());
  if (!outcome.ok()) {
    std::cerr << "qrank_ingest: " << outcome.status().ToString() << "\n";
    return 1;
  }
  return command == "drive" ? CmdDrive(cfg.value(), outcome.value())
                            : CmdInspect(cfg.value(), outcome.value());
}

}  // namespace
}  // namespace qrank

int main(int argc, char** argv) { return qrank::Run(argc, argv); }
