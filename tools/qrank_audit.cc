// qrank_audit: run the invariant-audit validators (src/audit/) over
// on-disk artifacts and emit a machine-readable TSV verdict.
//
// Usage:
//   qrank_audit [flags] <graph-file>...
//
// Each input file may be a text edge list ("qrank-edges v1"), a binary
// snapshot ("QRKG" magic), a compressed matrix ("QRKC" magic) or a
// score bundle ("QRKB" magic); the format is sniffed from the first
// bytes. Every graph gets the graph.* family (including the
// compressed-transpose decode check when --storage is on); QRKC files
// run the hardened reader end to end.
// With --deltas (default) and two or more graphs, each consecutive pair
// is additionally treated as a snapshot step: the delta between them
// is derived and the delta.* family (including the dirty-frontier cover
// check) runs against it. Score bundles get the serve.bundle.* family
// and take no part in delta pairing. With --scores=<file> (one score
// per line) the rank.* family runs too.
//
// Output, one row per validator executed:
//   <artifact> <TAB> <validator> <TAB> PASS|FAIL <TAB> <severity> <TAB> <detail>
// With --storage (default true, needs --transpose) each graph also
// gets a comment row with measured in-neighbor storage:
//   # storage: <artifact> edges=<n> raw_bpe=<x> compressed_bpe=<x> ratio=<x>
// followed by a trailing "# summary: ran=<n> passed=<n> failed=<n>".
//
// Exit status: 0 = every validator passed, 1 = at least one failure,
// 2 = usage or I/O error.
//
// Flags:
//   --transpose=<bool>   build + audit the cached transpose (default true)
//   --storage=<bool>     build the compressed transpose, audit it and
//                        report bytes-per-edge (default true; needs
//                        --transpose)
//   --deltas=<bool>      audit consecutive graph pairs as deltas (default true)
//   --scores=<path>      text file of scores, one per line
//   --expected-mass=<x>  L1 mass the scores should carry (default 1.0)
//   --mass-tolerance=<x> relative slack for the mass check (default 1e-6)

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/flags.h"
#include "common/status.h"
#include "graph/analysis.h"
#include "graph/csr_graph.h"
#include "graph/graph_delta.h"
#include "graph/graph_io.h"

namespace qrank {
namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: qrank_audit [--transpose=BOOL] [--storage=BOOL]\n"
        "                   [--deltas=BOOL] [--scores=FILE]\n"
        "                   [--expected-mass=X] [--mass-tolerance=X]\n"
        "                   <graph-or-bundle-file>...\n"
        "Audits graph/delta/rank/bundle invariants; TSV verdict on stdout.\n";
}

// Sniffs the binary-snapshot magic to pick the reader.
Result<CsrGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  in.close();
  if (magic[0] == 'Q' && magic[1] == 'R' && magic[2] == 'K' &&
      magic[3] == 'G') {
    return ReadGraphBinary(path);
  }
  Result<EdgeList> edges = ReadEdgeListText(path);
  if (!edges.ok()) return edges.status();
  return CsrGraph::FromEdgeList(edges.value());
}

// True when the file starts with "QRK<kind>" for the given kind byte
// ('B' = score bundle, 'C' = compressed matrix).
bool SniffMagic(const std::string& path, char kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  return in.gcount() == 4 && magic[0] == 'Q' && magic[1] == 'R' &&
         magic[2] == 'K' && magic[3] == kind;
}

Result<std::vector<uint8_t>> LoadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IOError("short read on " + path);
  return bytes;
}

Result<std::vector<double>> LoadScores(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<double> scores;
  std::string token;
  while (in >> token) {
    try {
      size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) {
        return Status::Corruption("malformed score '" + token + "' in " +
                                  path);
      }
      scores.push_back(v);
    } catch (const std::exception&) {
      return Status::Corruption("malformed score '" + token + "' in " + path);
    }
  }
  return scores;
}

AuditSeverity RegistrySeverity(const std::string& name) {
  for (const AuditValidator& v : AuditRegistry()) {
    if (name == v.name) return v.severity;
  }
  return AuditSeverity::kError;
}

struct Tally {
  size_t ran = 0;
  size_t failed = 0;
};

// One TSV row per validator that executed; FAIL rows carry the first
// recorded detail so downstream greps stay one-line-per-verdict.
void EmitReport(const std::string& artifact, const AuditReport& report,
                Tally* tally) {
  for (const std::string& name : report.ran) {
    ++tally->ran;
    const AuditIssue* first = nullptr;
    for (const AuditIssue& issue : report.issues) {
      if (issue.validator == name) {
        first = &issue;
        break;
      }
    }
    if (first != nullptr) ++tally->failed;
    std::cout << artifact << '\t' << name << '\t'
              << (first != nullptr ? "FAIL" : "PASS") << '\t'
              << AuditSeverityName(first != nullptr
                                       ? first->severity
                                       : RegistrySeverity(name))
              << '\t' << (first != nullptr ? first->detail : "-") << '\n';
  }
}

int Run(int argc, const char* const* argv) {
  FlagParser flags(argc, argv);
  const bool do_transpose = flags.GetBool("transpose", true);
  const bool do_storage = flags.GetBool("storage", true);
  const bool do_deltas = flags.GetBool("deltas", true);
  const std::string scores_path = flags.GetString("scores", "");
  const double expected_mass = flags.GetDouble("expected-mass", 1.0);
  const double mass_tolerance = flags.GetDouble("mass-tolerance", 1e-6);
  if (!flags.status().ok()) {
    std::cerr << "qrank_audit: " << flags.status().ToString() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::cerr << "qrank_audit: unknown flag --" << unused.front() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string>& paths = flags.positional();
  if (paths.empty() && scores_path.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  Tally tally;
  std::vector<CsrGraph> graphs;
  std::vector<std::string> graph_paths;  // bundle files skip delta pairing
  graphs.reserve(paths.size());
  for (const std::string& path : paths) {
    if (SniffMagic(path, 'C')) {
      // Standalone compressed matrix: the hardened reader IS the audit
      // (size-vs-header, checksum, full varint-stream validation).
      Result<CompressedCsr> matrix = ReadCompressedCsr(path);
      ++tally.ran;
      if (!matrix.ok()) {
        ++tally.failed;
        std::cout << path << "\tio.compressed_csr\tFAIL\terror\t"
                  << matrix.status().message() << '\n';
      } else {
        std::cout << path << "\tio.compressed_csr\tPASS\terror\t-\n";
        const CompressedCsr& m = matrix.value();
        std::cout << "# storage: " << path << " edges=" << m.num_values()
                  << " compressed_bpe=" << m.BytesPerEdge() << '\n';
      }
      continue;
    }
    if (SniffMagic(path, 'B')) {
      Result<std::vector<uint8_t>> bytes = LoadBytes(path);
      if (!bytes.ok()) {
        std::cerr << "qrank_audit: " << path << ": "
                  << bytes.status().ToString() << "\n";
        return 2;
      }
      EmitReport(path,
                 AuditScoreBundle(bytes.value().data(), bytes.value().size(),
                                  mass_tolerance),
                 &tally);
      continue;
    }
    Result<CsrGraph> graph = LoadGraph(path);
    if (!graph.ok()) {
      std::cerr << "qrank_audit: " << path << ": "
                << graph.status().ToString() << "\n";
      return 2;
    }
    graphs.push_back(std::move(graph).value());
    graph_paths.push_back(path);
    if (do_transpose) graphs.back().BuildTranspose();
    // Building the compressed transpose before the audit makes
    // graph.compressed_transpose applicable, so the decode check runs.
    if (do_transpose && do_storage) graphs.back().BuildCompressedTranspose();
    EmitReport(path, AuditGraph(graphs.back()), &tally);
    if (do_transpose && do_storage) {
      const TransposeStorageStats storage =
          ComputeTransposeStorage(graphs.back());
      std::cout << "# storage: " << path << " edges=" << storage.num_edges
                << " raw_bpe=" << storage.raw_bytes_per_edge
                << " compressed_bpe=" << storage.compressed_bytes_per_edge
                << " ratio=" << storage.compression_ratio << '\n';
    }
  }

  if (do_deltas) {
    for (size_t i = 1; i < graphs.size(); ++i) {
      const CsrGraph& base = graphs[i - 1];
      const CsrGraph& next = graphs[i];
      const GraphDelta delta = GraphDelta::Between(base, next);
      const std::vector<uint8_t> dirty = delta.DirtyFrontier(next);
      EmitReport(graph_paths[i - 1] + " -> " + graph_paths[i],
                 AuditDelta(base, delta, &next, &dirty), &tally);
    }
  }

  if (!scores_path.empty()) {
    Result<std::vector<double>> scores = LoadScores(scores_path);
    if (!scores.ok()) {
      std::cerr << "qrank_audit: " << scores_path << ": "
                << scores.status().ToString() << "\n";
      return 2;
    }
    EmitReport(scores_path,
               AuditRankVector(scores.value(), expected_mass, mass_tolerance),
               &tally);
  }

  std::cout << "# summary: ran=" << tally.ran << " passed="
            << (tally.ran - tally.failed) << " failed=" << tally.failed
            << "\n";
  return tally.failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qrank

int main(int argc, char** argv) { return qrank::Run(argc, argv); }
