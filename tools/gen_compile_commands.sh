#!/bin/sh
# Produce (or refresh) a compile_commands.json for editor tooling,
# clang-tidy, and tools/qrank_lint.py without disturbing an existing
# build tree. CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in the
# top-level CMakeLists, so any configured build dir already has one —
# this script exists for the cold-start case and for CI jobs that only
# need the database, not the build.
#
# Usage: tools/gen_compile_commands.sh [build_dir] [extra cmake args...]
#   build_dir defaults to ./build. A compile_commands.json symlink is
#   left at the repo root (clangd's default search location).
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
[ $# -gt 0 ] && shift

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" \
  >/dev/null

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "gen_compile_commands: configure ran but produced no database" >&2
  exit 1
fi

ln -sf "$BUILD/compile_commands.json" "$ROOT/compile_commands.json"
echo "$BUILD/compile_commands.json ($(grep -c '"file"' \
  "$BUILD/compile_commands.json") entries; symlinked at repo root)"
