#!/usr/bin/env python3
"""qrank_lint: compile_commands.json-driven checker for qrank repo contracts.

Clang's -Wthread-safety covers lock discipline (see
src/common/thread_annotations.h); this tool covers the repo rules that
are not expressible as type-system attributes. It is deliberately
stdlib-only: the build container has no libclang, so the frontend is a
small C++ tokenizer (comments and literals stripped, local includes
resolved transitively) driven by the compile database, which gives it
the two things a grep cannot have — per-TU compile flags and per-TU
transitive closure.

Rules
-----
  hot-alloc    Functions marked QRANK_HOT must not allocate, directly or
               through any function defined in the same translation
               unit. Allocation is detected at token level (operator
               new, malloc-family, growing container members,
               make_unique/make_shared, string builders); calls that
               leave the TU are invisible, which is why the runtime
               counting-allocator tests remain authoritative. This rule
               is the fast, always-on first line.
  scalar-tu    Functions marked QRANK_SCALAR_TU_ONLY (the bit-exactness
               oracles, e.g. ScalarCompressedBlockSweep) may only be
               defined in TUs compiled without -mavx*/-march=*avx*/
               -ffast-math/-Ofast: FMA contraction or fast-math
               reassociation would silently change their rounding and
               break the cross-variant bit-equality contract. The
               marker must appear in the TU's main file.
  reader-guard Binary readers (functions named Load*/From*/Decode* that
               touch raw bytes) must size/header-check their input
               before the first allocation or byte-copy, so a header
               promising 2^31 pages in a 1 KB file dies in validation,
               not in operator new. The check is ordering-plus-basic-
               reachability: a guard whose condition is killed by a
               constant short-circuit (`true || check`, `false &&
               check`) does not count — see
               tests/lint_fixtures/reader_guard_known_miss.cc, which
               this catches. Full dataflow (a check behind `if
               (always_true_var)`) remains out of scope.
  no-assert    No raw assert(): it vanishes under NDEBUG and prints no
               context. Use QRANK_CHECK / QRANK_DCHECK (common/logging.h).
  naked-mutex  No std::mutex / std::condition_variable / std::lock_guard
               (and friends) outside common/thread_annotations.h. The
               annotated qrank::Mutex wrappers are what make
               -Wthread-safety able to see lock discipline at all; one
               naked mutex is an unanalyzable hole.

Suppression
-----------
A finding is suppressed by a comment on the same line or the directly
preceding comment block:

    // qrank-lint: allow(hot-alloc) grow-once scratch, see kernel_alloc_test

The rule name is required; a reason is expected by convention (and by
code review). For hot-alloc the suppression also stops the transitive
walk through that call site.

Exit status: 0 clean, 1 findings, 2 usage/database errors.
"""

import argparse
import json
import os
import re
import sys
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])  # kind: id num punct str
Function = namedtuple(
    "Function", ["name", "qual", "file", "line", "body", "markers"])
Finding = namedtuple("Finding", ["rule", "file", "line", "message"])

ALL_RULES = ("hot-alloc", "scalar-tu", "reader-guard", "no-assert",
             "naked-mutex")

ALLOW_RE = re.compile(r"qrank-lint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")

# Names whose `name (...)` is control flow or an operator, never a call
# or a definition.
CONTROL = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "defined", "co_await", "co_return",
    "co_yield", "throw", "alignas", "noexcept", "typeid", "delete",
}

# Direct allocation evidence for hot-alloc: a call to one of these, or
# the `new` keyword. Member names are matched regardless of receiver —
# in a QRANK_HOT body any growing container is a bug or needs an
# explicit allow() with its amortization argument.
ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "make_obj_using_allocator",
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "resize", "reserve", "assign", "insert", "append", "to_string",
    "substr", "operator_new",
}

# reader-guard: the first of these in a Load*/From*/Decode* body must
# be preceded by a size-ish check.
READER_RISKY = {
    "memcpy", "memmove", "reinterpret_cast", "resize", "reserve", "assign",
    "push_back", "emplace_back", "pread", "fread", "mmap", "new",
}
# ...and evidence that the function actually consumes raw bytes (rule
# scope gate, so PermFromOrder / FromEdges-style structured builders are
# out of scope).
READER_BYTE_TOKENS = {
    "uint8_t", "int8_t", "istream", "ifstream", "pread", "fread", "mmap",
    "ReadPod", "byte",
}
READER_NAME_RE = re.compile(r"^(Load|From|Decode)([A-Z_].*)?$")

# A guard is an `if`/check-macro/validator call whose parenthesized
# condition mentions one of these (substring match on identifiers).
GUARD_HINTS = ("size", "Size", "empty", "Empty", "length", "magic", "Magic",
               "remaining", "Remaining", "sizeof")
GUARD_CALL_RE = re.compile(r"^(QRANK_CHECK|QRANK_DCHECK|Validate|Check)")

MUTEX_IDS = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "scoped_lock",
}

ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
ID_CONT = ID_START | set("0123456789")


def tokenize(text):
    """Returns (tokens, allows, includes).

    allows: {rule: set(lines)} — suppressed lines (the comment's line
    and the next line that carries a token).
    includes: ["name.h", ...] from #include "name.h" directives.
    """
    tokens = []
    allow_comments = []  # (line, [rules])
    includes = []
    i, n, line = 0, len(text), 1

    def record_allow(comment, at_line):
        m = ALLOW_RE.search(comment)
        if m:
            rules = [r.strip() for r in m.group(1).split(",")]
            allow_comments.append((at_line, rules))

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            record_allow(text[i:j], line)
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comment = text[i:j]
            record_allow(comment, line)
            line += comment.count("\n")
            i = j
        elif c == "#" and (not tokens or tokens[-1].line != line):
            # Preprocessor directive: consume the logical line.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    continue
                j = k
                break
            directive = text[i:j]
            m = re.match(r'#\s*include\s*"([^"]+)"', directive)
            if m:
                includes.append(m.group(1))
            line += directive.count("\n")
            i = j
        elif c == '"':
            # String literal (handles the non-raw case; raw below).
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", text[i:j + 1], line))
            line += text.count("\n", i, min(j + 1, n))
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'" and text[j] != "\n":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", text[i:j + 1], line))
            i = j + 1
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i)
                j = n if j < 0 else j + len(close)
                tokens.append(Token("str", "<raw>", line))
                line += text.count("\n", i, j)
                i = j
            else:
                tokens.append(Token("id", "R", line))
                i += 1
        elif c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
        elif c.isdigit():
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] in ".'"):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
        else:
            tokens.append(Token("punct", c, line))
            i += 1

    token_lines = sorted({t.line for t in tokens})
    allows = {}
    for at_line, rules in allow_comments:
        covered = {at_line}
        nxt = next((l for l in token_lines if l > at_line), None)
        if nxt is not None:
            covered.add(nxt)
        for rule in rules:
            allows.setdefault(rule, set()).update(covered)
    return tokens, allows, includes


def match_forward(tokens, i, open_c, close_c):
    """Index of the token closing the bracket opened at i, or None."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return j
    return None


def skip_post_qualifiers(tokens, k):
    """After a parameter list's `)`, skip const/noexcept/attributes/
    trailing-return so the caller can test for `{`, `:` or `;`."""
    n = len(tokens)
    while k < n:
        t = tokens[k]
        if t.kind == "id" and t.text in (
                "const", "noexcept", "override", "final", "mutable", "try",
                "volatile", "throw"):
            k += 1
            if k < n and tokens[k].text == "(":  # noexcept(...) / throw()
                close = match_forward(tokens, k, "(", ")")
                if close is None:
                    return None
                k = close + 1
        elif t.kind == "id" and t.text.startswith("QRANK_"):
            k += 1
            if k < n and tokens[k].text == "(":
                close = match_forward(tokens, k, "(", ")")
                if close is None:
                    return None
                k = close + 1
        elif t.text in ("&", "&&"):
            k += 1
        elif t.text == "-" and k + 1 < n and tokens[k + 1].text == ">":
            # Trailing return type: consume type tokens up to { ; or :.
            k += 2
            while k < n and tokens[k].text not in ("{", ";", ":", ","):
                if tokens[k].text == "(":
                    close = match_forward(tokens, k, "(", ")")
                    if close is None:
                        return None
                    k = close
                k += 1
        else:
            return k
    return None


def skip_member_inits(tokens, k):
    """From just after a ctor's `:`, return the index of the body `{`."""
    n = len(tokens)
    while k < n:
        while k < n and (tokens[k].kind == "id" or
                         tokens[k].text in ("::", ":", "<", ">", ",")):
            # Qualified/templated member names; lenient.
            if tokens[k].text == ",":
                k += 1
                break
            k += 1
        if k >= n:
            return None
        if tokens[k].text == "(":
            close = match_forward(tokens, k, "(", ")")
        elif tokens[k].text == "{":
            # Either an init `member{...}` or the ctor body. Treat a `{`
            # directly after a completed init (preceded by `)` or `}`)
            # as the body.
            prev = tokens[k - 1].text if k > 0 else ""
            if prev in (")", "}"):
                return k
            close = match_forward(tokens, k, "{", "}")
        else:
            return None
        if close is None:
            return None
        k = close + 1
        if k < n and tokens[k].text == "{":
            return k
        if k < n and tokens[k].text == ",":
            k += 1
            continue
    return None


def scan_markers(tokens, idx):
    """Collect QRANK_* marker ids between the previous declaration
    boundary and the function name at idx."""
    markers = set()
    j = idx
    steps = 0
    while j >= 0 and steps < 64:
        t = tokens[j]
        if t.text in (";", "}", "{"):
            break
        if t.kind == "id" and t.text.startswith("QRANK_"):
            markers.add(t.text)
        j -= 1
        steps += 1
    return markers


def qualified_name(tokens, idx):
    parts = [tokens[idx].text]
    j = idx - 1
    while j > 0 and tokens[j].text == ":" and tokens[j - 1].text == ":":
        j -= 2
        if j >= 0 and tokens[j].kind == "id":
            parts.append(tokens[j].text)
            j -= 1
        else:
            break
    return "::".join(reversed(parts))


def extract_functions(tokens, path):
    """Find function definitions: id ( params ) [quals] [: inits] {."""
    funcs = []
    n = len(tokens)
    i = 1
    while i < n:
        if tokens[i].text != "(" or tokens[i - 1].kind != "id":
            i += 1
            continue
        name_tok = tokens[i - 1]
        if name_tok.text in CONTROL or name_tok.text.startswith("QRANK_"):
            i += 1
            continue
        close = match_forward(tokens, i, "(", ")")
        if close is None:
            i += 1
            continue
        k = skip_post_qualifiers(tokens, close + 1)
        if k is None or k >= n:
            i += 1
            continue
        if tokens[k].text == ":":
            k = skip_member_inits(tokens, k + 1)
            if k is None:
                i += 1
                continue
        if tokens[k].text == "{":
            end = match_forward(tokens, k, "{", "}")
            if end is not None:
                funcs.append(Function(
                    name=name_tok.text,
                    qual=qualified_name(tokens, i - 1),
                    file=path,
                    line=name_tok.line,
                    body=(k + 1, end, (i + 1, close)),
                    markers=frozenset(scan_markers(tokens, i - 1))))
        i += 1
    return funcs


Call = namedtuple("Call", ["name", "line", "is_new"])


def extract_calls(tokens, lo, hi):
    calls = []
    j = lo
    while j < hi:
        t = tokens[j]
        if t.kind == "id":
            if t.text == "new":
                # `operator new` overload mention vs the expression.
                prev = tokens[j - 1].text if j > 0 else ""
                if prev != "operator":
                    calls.append(Call("new", t.line, True))
            elif t.text in ("make_unique", "make_shared") and j + 1 < hi \
                    and tokens[j + 1].text == "<":
                calls.append(Call(t.text, t.line, False))
            elif j + 1 < hi and tokens[j + 1].text == "(" \
                    and t.text not in CONTROL:
                calls.append(Call(t.text, t.line, False))
        j += 1
    return calls


class SourceFile:
    def __init__(self, path):
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        self.path = path
        self.tokens, self.allows, self.includes = tokenize(text)
        self.functions = extract_functions(self.tokens, path)

    def suppressed(self, rule, line):
        return line in self.allows.get(rule, ())


class Lint:
    def __init__(self, repo_root, rules):
        self.repo_root = repo_root
        self.rules = rules
        self.files = {}  # abs path -> SourceFile
        self.findings = {}  # dedup key -> Finding
        self.per_file_done = set()  # (rule, path) for TU-independent rules

    def file(self, path):
        path = os.path.realpath(path)
        sf = self.files.get(path)
        if sf is None:
            sf = SourceFile(path)
            self.files[path] = sf
        return sf

    def add(self, rule, path, line, message):
        rel = os.path.relpath(path, self.repo_root)
        key = (rule, rel, line, message)
        if key not in self.findings:
            self.findings[key] = Finding(rule, rel, line, message)

    # -- TU assembly ---------------------------------------------------

    def resolve_tu(self, main_path, include_dirs):
        """Transitive closure over local quoted includes, repo files only."""
        seen = []
        seen_set = set()
        stack = [os.path.realpath(main_path)]
        while stack:
            path = stack.pop()
            if path in seen_set or not path.startswith(self.repo_root):
                continue
            try:
                sf = self.file(path)
            except OSError:
                continue
            seen.append(sf)
            seen_set.add(path)
            base = os.path.dirname(path)
            for inc in sf.includes:
                for d in [base] + include_dirs:
                    cand = os.path.realpath(os.path.join(d, inc))
                    if os.path.isfile(cand):
                        stack.append(cand)
                        break
        return seen

    # -- rules ---------------------------------------------------------

    def check_tu(self, main_path, include_dirs, args):
        tu = self.resolve_tu(main_path, include_dirs)
        if "hot-alloc" in self.rules:
            self.rule_hot_alloc(tu)
        if "scalar-tu" in self.rules:
            self.rule_scalar_tu(tu[0], args)
        for sf in tu:
            if "reader-guard" in self.rules:
                self.per_file_rule("reader-guard", sf, self.rule_reader_guard)
            if "no-assert" in self.rules:
                self.per_file_rule("no-assert", sf, self.rule_no_assert)
            if "naked-mutex" in self.rules:
                self.per_file_rule("naked-mutex", sf, self.rule_naked_mutex)

    def per_file_rule(self, rule, sf, fn):
        key = (rule, sf.path)
        if key in self.per_file_done:
            return
        self.per_file_done.add(key)
        fn(sf)

    def rule_hot_alloc(self, tu):
        defs = {}
        for sf in tu:
            for f in sf.functions:
                defs.setdefault(f.name, []).append((sf, f))
        for sf in tu:
            for f in sf.functions:
                if "QRANK_HOT" not in f.markers:
                    continue
                self._walk_hot(sf, f, defs, visited={f.name},
                               root=f.qual, via=[])

    def _walk_hot(self, sf, fn, defs, visited, root, via):
        lo, hi, _ = fn.body
        for call in extract_calls(sf.tokens, lo, hi):
            if sf.suppressed("hot-alloc", call.line):
                continue
            if call.is_new or call.name in ALLOC_CALLS:
                path = " -> ".join(via + [call.name])
                self.add(
                    "hot-alloc", sf.path, call.line,
                    "QRANK_HOT function '%s' allocates via %s; hot paths "
                    "must be allocation-free (pre-size in setup, or add "
                    "'// qrank-lint: allow(hot-alloc) <reason>' with the "
                    "amortization argument)" % (root, path))
            elif call.name in defs and call.name not in visited:
                visited.add(call.name)
                for callee_sf, callee in defs[call.name]:
                    self._walk_hot(callee_sf, callee, defs, visited, root,
                                   via + [call.name])

    def rule_scalar_tu(self, main_sf, args):
        bad = [a for a in args
               if a.startswith("-mavx") or a == "-ffast-math"
               or a == "-Ofast" or a == "-funsafe-math-optimizations"
               or (a.startswith("-march=") and "avx" in a)]
        if not bad:
            return
        for f in main_sf.functions:
            if "QRANK_SCALAR_TU_ONLY" not in f.markers:
                continue
            if main_sf.suppressed("scalar-tu", f.line):
                continue
            self.add(
                "scalar-tu", main_sf.path, f.line,
                "'%s' is QRANK_SCALAR_TU_ONLY (bit-exactness oracle) but "
                "this TU is compiled with %s; FMA contraction/fast-math "
                "would change its rounding" % (f.qual, " ".join(bad)))

    def rule_reader_guard(self, sf):
        for f in sf.functions:
            if not READER_NAME_RE.match(f.name):
                continue
            lo, hi, (plo, phi) = f.body
            scope = sf.tokens[plo:phi] + sf.tokens[lo:hi]
            if not any(t.kind == "id" and t.text in READER_BYTE_TOKENS
                       for t in scope):
                continue  # not a raw-byte reader
            risky = self._first_risky(sf.tokens, lo, hi)
            if risky is None:
                continue
            guard = self._first_guard(sf.tokens, lo, hi)
            if guard is not None and guard < risky[0]:
                continue
            tok = risky[1]
            if sf.suppressed("reader-guard", tok.line) or \
                    sf.suppressed("reader-guard", f.line):
                continue
            self.add(
                "reader-guard", sf.path, tok.line,
                "binary reader '%s' hits '%s' before any size/header "
                "check; validate input bounds before the first allocation "
                "or byte copy" % (f.qual, tok.text))

    @staticmethod
    def _first_risky(tokens, lo, hi):
        for j in range(lo, hi):
            t = tokens[j]
            if t.kind != "id":
                continue
            if t.text == "new" and (j == 0 or tokens[j - 1].text != "operator"):
                return j, t
            if t.text in READER_RISKY and t.text != "new":
                nxt = tokens[j + 1].text if j + 1 < hi else ""
                if nxt in ("(", "<"):
                    return j, t
        return None

    @staticmethod
    def _dead_indices(tokens, lo, hi):
        """Token indices in [lo, hi) unreachable by constant short-circuit.

        Inside an if-condition, everything at the condition's own
        parenthesis depth after `true ||` (right operand never
        evaluated) or `false &&` is dead. A size check or validator
        call living in such a tail guards nothing. Value propagation
        (`if (kAlwaysTrue || ...)`) stays out of scope — this is a
        tokenizer, not an evaluator.
        """
        dead = set()
        for j in range(lo, hi):
            t = tokens[j]
            if t.kind != "id" or t.text != "if":
                continue
            if j + 1 >= hi or tokens[j + 1].text != "(":
                continue
            close = match_forward(tokens, j + 1, "(", ")")
            if close is None or close >= hi:
                continue
            depth = 0
            for i in range(j + 2, close):
                c = tokens[i]
                if c.kind == "punct":
                    if c.text == "(":
                        depth += 1
                    elif c.text == ")":
                        depth -= 1
                    continue
                if depth != 0 or c.kind != "id":
                    continue
                op = {"true": "|", "false": "&"}.get(c.text)
                if op and i + 2 < close and tokens[i + 1].text == op \
                        and tokens[i + 2].text == op:
                    dead.update(range(i + 1, close))
                    break
        return dead

    @staticmethod
    def _first_guard(tokens, lo, hi):
        dead = Lint._dead_indices(tokens, lo, hi)
        j = lo
        while j < hi:
            t = tokens[j]
            if j not in dead and t.kind == "id" and \
                    (t.text == "if" or GUARD_CALL_RE.match(t.text)):
                if j + 1 < hi and tokens[j + 1].text == "(":
                    close = match_forward(tokens, j + 1, "(", ")")
                    if close is not None and close < hi:
                        cond = [tokens[i] for i in range(j + 2, close)
                                if i not in dead]
                        if t.text != "if" or any(
                                c.kind == "id" and
                                any(h in c.text for h in GUARD_HINTS)
                                for c in cond):
                            return j
                        j = j + 1
            j += 1
        return None

    def rule_no_assert(self, sf):
        toks = sf.tokens
        for j, t in enumerate(toks):
            if t.kind == "id" and t.text == "assert" \
                    and j + 1 < len(toks) and toks[j + 1].text == "(":
                if sf.suppressed("no-assert", t.line):
                    continue
                self.add(
                    "no-assert", sf.path, t.line,
                    "raw assert() vanishes under NDEBUG and logs no "
                    "context; use QRANK_CHECK / QRANK_DCHECK "
                    "(common/logging.h)")

    def rule_naked_mutex(self, sf):
        if os.path.basename(sf.path) == "thread_annotations.h":
            return
        toks = sf.tokens
        for j in range(len(toks) - 2):
            if toks[j].text == "std" and toks[j + 1].text == ":" \
                    and toks[j + 2].text == ":" and j + 3 < len(toks) \
                    and toks[j + 3].text in MUTEX_IDS:
                t = toks[j + 3]
                if sf.suppressed("naked-mutex", t.line):
                    continue
                self.add(
                    "naked-mutex", sf.path, t.line,
                    "naked std::%s is invisible to -Wthread-safety; use "
                    "qrank::Mutex / MutexLock / CondVar "
                    "(common/thread_annotations.h)" % t.text)


def parse_db_entry(entry):
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        # Shell-split; compile commands from CMake have no tricky quoting
        # beyond -D values, which none of our checks read.
        args = entry["command"].split()
    directory = entry["directory"]
    file_path = entry["file"]
    if not os.path.isabs(file_path):
        file_path = os.path.join(directory, file_path)
    include_dirs = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "-I" and i + 1 < len(args):
            include_dirs.append(os.path.join(directory, args[i + 1]))
            i += 2
            continue
        if a.startswith("-I"):
            include_dirs.append(os.path.join(directory, a[2:]))
        i += 1
    return file_path, include_dirs, args


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="qrank_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("-p", "--database", required=True,
                    help="path to compile_commands.json (or its directory)")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated subset of: %s" % ", ".join(ALL_RULES))
    ap.add_argument("--select", default=r"(^|/)src/",
                    help="regex; only database entries whose file path "
                         "matches are analyzed (default: %(default)s)")
    ap.add_argument("--report", help="also write findings to this file")
    ap.add_argument("--root", help="repo root for relative paths in output "
                                   "(default: database directory's parent)")
    args = ap.parse_args(argv)

    db_path = args.database
    if os.path.isdir(db_path):
        db_path = os.path.join(db_path, "compile_commands.json")
    try:
        with open(db_path, "r", encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError) as e:
        print("qrank_lint: cannot read %s: %s" % (db_path, e), file=sys.stderr)
        return 2

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print("qrank_lint: unknown rule(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.realpath(db_path)))
    root = os.path.realpath(root)
    select = re.compile(args.select) if args.select else None

    lint = Lint(root, rules)
    analyzed = 0
    for entry in db:
        file_path, include_dirs, cmd_args = parse_db_entry(entry)
        if select and not select.search(file_path):
            continue
        if not os.path.isfile(file_path):
            continue
        lint.check_tu(file_path, include_dirs, cmd_args)
        analyzed += 1

    findings = sorted(lint.findings.values(),
                      key=lambda f: (f.file, f.line, f.rule))
    lines = ["%s:%d: error: [%s] %s" % (f.file, f.line, f.rule, f.message)
             for f in findings]
    summary = "qrank_lint: %d finding(s) in %d TU(s), %d file(s) scanned" % (
        len(findings), analyzed, len(lint.files))
    out = "\n".join(lines + [summary])
    print(out)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(out + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
