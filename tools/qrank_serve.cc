// qrank_serve: build, inspect, query and micro-bench score bundles
// (src/serve/) from the command line.
//
// Usage:
//   qrank_serve build --quality=FILE --pagerank=FILE --out=PATH
//                     [--site-ids=FILE] [--num-sites=N]
//                     [--expected-mass=X] [--creator-tag=N]
//   qrank_serve inspect <bundle>
//   qrank_serve query <bundle> [--k=N] [--alpha=X] [--site=N]
//                     [--epsilon=X] [--seed=N] [--mmap=BOOL]
//   qrank_serve bench <bundle> [--queries=N] [--k=N] [--alpha=X]
//                     [--site=N] [--mmap=BOOL]
//   qrank_serve shard <bundle> --out-dir=DIR [--shards=N] [--mmap=BOOL]
//
// `build` reads text score files (one value per line, row order) and
// writes the serialized bundle. `inspect` prints the header and section
// table, then runs the serve.bundle.* audit family; a corrupt bundle
// exits 1. `query` prints one TSV row per result:
//   <rank> <TAB> <row> <TAB> <page_id> <TAB> <score> <TAB> <promoted>
// `bench` loops TopKOnBundle on one thread and reports QPS plus sampled
// p50/p99 latency (the full-churn suite lives in bench_perf_serve).
// `shard` partitions a bundle by site into per-shard bundles plus the
// shard map and sidecars the distributed tier (src/dist/) serves from.
// None of the shared solver flags (rank/solver_flags.h: --order,
// --partition, --kernel, --compressed) apply here — this tool serves
// precomputed score bundles and never runs a PageRank solve; the
// binaries that do (crawl_pipeline, qrank_ingest, bench_perf_pagerank)
// all accept that set.
//
// Exit status: 0 = success, 1 = audit failure (inspect), 2 = usage or
// I/O error.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/flags.h"
#include "common/status.h"
#include "dist/shard_map.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace qrank {
namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: qrank_serve build --quality=FILE --pagerank=FILE --out=PATH\n"
        "                         [--site-ids=FILE] [--num-sites=N]\n"
        "                         [--expected-mass=X] [--creator-tag=N]\n"
        "       qrank_serve inspect <bundle>\n"
        "       qrank_serve query <bundle> [--k=N] [--alpha=X] [--site=N]\n"
        "                         [--epsilon=X] [--seed=N] [--mmap=BOOL]\n"
        "       qrank_serve bench <bundle> [--queries=N] [--k=N]\n"
        "                         [--alpha=X] [--site=N] [--mmap=BOOL]\n"
        "       qrank_serve shard <bundle> --out-dir=DIR [--shards=N]\n"
        "                         [--mmap=BOOL]\n";
}

Result<std::vector<double>> LoadDoubles(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<double> values;
  std::string token;
  while (in >> token) {
    try {
      size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) {
        return Status::Corruption("malformed value '" + token + "' in " +
                                  path);
      }
      values.push_back(v);
    } catch (const std::exception&) {
      return Status::Corruption("malformed value '" + token + "' in " + path);
    }
  }
  return values;
}

Result<std::vector<SiteId>> LoadSiteIds(const std::string& path) {
  QRANK_ASSIGN_OR_RETURN(std::vector<double> raw, LoadDoubles(path));
  std::vector<SiteId> ids;
  ids.reserve(raw.size());
  for (double v : raw) {
    if (v < 0 || v != static_cast<double>(static_cast<SiteId>(v))) {
      return Status::Corruption("site id out of range in " + path);
    }
    ids.push_back(static_cast<SiteId>(v));
  }
  return ids;
}

int CmdBuild(FlagParser& flags) {
  const std::string quality_path = flags.GetString("quality", "");
  const std::string pagerank_path = flags.GetString("pagerank", "");
  const std::string site_ids_path = flags.GetString("site-ids", "");
  const std::string out_path = flags.GetString("out", "");
  ScoreBundleSource source;
  source.num_sites = static_cast<SiteId>(flags.GetInt("num-sites", 0));
  source.expected_mass = flags.GetDouble("expected-mass", 0.0);
  source.creator_tag =
      static_cast<uint32_t>(flags.GetInt("creator-tag", 0));
  if (!flags.status().ok() || quality_path.empty() || pagerank_path.empty() ||
      out_path.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }
  auto fail = [](const std::string& what, const Status& st) {
    std::cerr << "qrank_serve: " << what << ": " << st.ToString() << "\n";
    return 2;
  };
  Result<std::vector<double>> quality = LoadDoubles(quality_path);
  if (!quality.ok()) return fail(quality_path, quality.status());
  Result<std::vector<double>> pagerank = LoadDoubles(pagerank_path);
  if (!pagerank.ok()) return fail(pagerank_path, pagerank.status());
  source.quality = std::move(quality).value();
  source.pagerank = std::move(pagerank).value();
  if (!site_ids_path.empty()) {
    Result<std::vector<SiteId>> site_ids = LoadSiteIds(site_ids_path);
    if (!site_ids.ok()) return fail(site_ids_path, site_ids.status());
    source.site_ids = std::move(site_ids).value();
  }
  Result<ScoreBundleWriter> writer = ScoreBundleWriter::Create(
      std::move(source));
  if (!writer.ok()) return fail("build", writer.status());
  const Status st = writer.value().WriteFile(out_path);
  if (!st.ok()) return fail(out_path, st);
  std::cout << out_path << ": " << writer.value().num_pages() << " pages, "
            << writer.value().num_sites() << " sites\n";
  return 0;
}

Result<LoadedBundle> OpenBundle(const std::string& path, bool prefer_mmap) {
  return LoadedBundle::Load(path, prefer_mmap);
}

int CmdInspect(FlagParser& flags, const std::string& path) {
  if (!flags.status().ok()) {
    PrintUsage(std::cerr);
    return 2;
  }
  // Inspect audits the raw image (mirrors `qrank_audit <bundle>`), so a
  // bundle the loader would reject still gets a structured verdict.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::cerr << "qrank_serve: cannot open " << path << "\n";
    return 2;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    std::cerr << "qrank_serve: short read on " << path << "\n";
    return 2;
  }

  if (bytes.size() >= sizeof(BundleHeader)) {
    BundleHeader header;
    std::memcpy(&header, bytes.data(), sizeof(BundleHeader));
    std::printf("%s: %zu bytes\n", path.c_str(), bytes.size());
    std::printf("  magic          %.4s (version %u)\n", header.magic,
                header.version);
    std::printf("  pages          %u\n", header.num_pages);
    std::printf("  sites          %u\n", header.num_sites);
    std::printf("  expected_mass  %.17g\n", header.expected_mass);
    std::printf("  creator_tag    %u\n", header.creator_tag);
    std::printf("  payload_crc32  %08x\n", header.payload_crc32);
    const auto* table = reinterpret_cast<const BundleSectionEntry*>(
        bytes.data() + sizeof(BundleHeader));
    const uint32_t sections =
        std::min(header.section_count, uint32_t{kBundleMaxSections});
    if (bytes.size() >= sizeof(BundleHeader) +
                            uint64_t{sections} * sizeof(BundleSectionEntry)) {
      for (uint32_t i = 0; i < sections; ++i) {
        std::printf("  section %2u     id=%u offset=%" PRIu64
                    " size=%" PRIu64 "\n",
                    i, table[i].id, table[i].offset, table[i].size);
      }
    }
  } else {
    std::printf("%s: %zu bytes (smaller than the bundle header)\n",
                path.c_str(), bytes.size());
  }

  const AuditReport report = AuditScoreBundle(bytes.data(), bytes.size());
  for (const std::string& name : report.ran) {
    std::printf("  %-22s %s\n", name.c_str(),
                report.Failed(name) ? "FAIL" : "PASS");
  }
  for (const AuditIssue& issue : report.issues) {
    std::printf("    %s: %s\n", issue.validator.c_str(),
                issue.detail.c_str());
  }
  return report.ok() ? 0 : 1;
}

Result<TopKQuery> QueryFromFlags(FlagParser& flags) {
  TopKQuery query;
  query.k = static_cast<uint32_t>(flags.GetInt("k", 10));
  query.blend_alpha = flags.GetDouble("alpha", 1.0);
  const int64_t site = flags.GetInt("site", -1);
  query.site = site < 0 ? kAllSites : static_cast<SiteId>(site);
  query.exploration_epsilon = flags.GetDouble("epsilon", 0.0);
  query.exploration_seed =
      static_cast<uint64_t>(flags.GetInt("seed", 0));
  if (!flags.status().ok()) return flags.status();
  return query;
}

int CmdQuery(FlagParser& flags, const std::string& path) {
  Result<TopKQuery> query = QueryFromFlags(flags);
  const bool prefer_mmap = flags.GetBool("mmap", true);
  if (!query.ok() || !flags.status().ok()) {
    PrintUsage(std::cerr);
    return 2;
  }
  Result<LoadedBundle> bundle = OpenBundle(path, prefer_mmap);
  if (!bundle.ok()) {
    std::cerr << "qrank_serve: " << path << ": "
              << bundle.status().ToString() << "\n";
    return 2;
  }
  TopKScratch scratch;
  const Status st =
      QueryEngine::TopKOnBundle(bundle.value(), query.value(), &scratch);
  if (!st.ok()) {
    std::cerr << "qrank_serve: query: " << st.ToString() << "\n";
    return 2;
  }
  size_t rank = 1;
  for (const TopKEntry& e : scratch.results()) {
    std::printf("%zu\t%u\t%u\t%.17g\t%d\n", rank++, e.row, e.page_id,
                e.score, e.promoted ? 1 : 0);
  }
  return 0;
}

int CmdBench(FlagParser& flags, const std::string& path) {
  Result<TopKQuery> query = QueryFromFlags(flags);
  const int64_t num_queries = flags.GetInt("queries", 200000);
  const bool prefer_mmap = flags.GetBool("mmap", true);
  if (!query.ok() || !flags.status().ok() || num_queries <= 0) {
    PrintUsage(std::cerr);
    return 2;
  }
  Result<LoadedBundle> bundle = OpenBundle(path, prefer_mmap);
  if (!bundle.ok()) {
    std::cerr << "qrank_serve: " << path << ": "
              << bundle.status().ToString() << "\n";
    return 2;
  }
  TopKScratch scratch;
  TopKQuery q = query.value();
  // Vary the exploration seed per query so the bench doesn't serve one
  // memoizable draw sequence; deterministic queries ignore it.
  using Clock = std::chrono::steady_clock;
  std::vector<double> sampled_ns;  // every 64th query timed individually
  sampled_ns.reserve(static_cast<size_t>(num_queries) / 64 + 1);
  double checksum = 0.0;
  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < num_queries; ++i) {
    q.exploration_seed = static_cast<uint64_t>(i);
    const bool timed = (i & 63) == 0;
    const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
    const Status st = QueryEngine::TopKOnBundle(bundle.value(), q, &scratch);
    if (!st.ok()) {
      std::cerr << "qrank_serve: query " << i << ": " << st.ToString()
                << "\n";
      return 2;
    }
    if (timed) {
      sampled_ns.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
    const std::span<const TopKEntry> results = scratch.results();
    if (!results.empty()) checksum += results[0].score;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(sampled_ns.begin(), sampled_ns.end());
  const auto percentile = [&sampled_ns](double p) {
    if (sampled_ns.empty()) return 0.0;
    const size_t i = static_cast<size_t>(p * (sampled_ns.size() - 1));
    return sampled_ns[i];
  };
  std::printf(
      "%s: %" PRId64 " queries in %.3f s = %.0f QPS "
      "(p50 %.0f ns, p99 %.0f ns, checksum %.6g)\n",
      path.c_str(), num_queries, elapsed_s, num_queries / elapsed_s,
      percentile(0.50), percentile(0.99), checksum);
  return 0;
}

int CmdShard(FlagParser& flags, const std::string& path) {
  const std::string out_dir = flags.GetString("out-dir", "");
  const int64_t num_shards = flags.GetInt("shards", 2);
  const bool prefer_mmap = flags.GetBool("mmap", true);
  if (!flags.status().ok() || out_dir.empty() || num_shards < 1 ||
      num_shards > static_cast<int64_t>(kMaxShards)) {
    PrintUsage(std::cerr);
    return 2;
  }
  Result<LoadedBundle> bundle = OpenBundle(path, prefer_mmap);
  if (!bundle.ok()) {
    std::cerr << "qrank_serve: " << path << ": "
              << bundle.status().ToString() << "\n";
    return 2;
  }
  Result<ShardSplit> split = SplitBundleBySite(
      bundle.value(), static_cast<uint32_t>(num_shards), out_dir);
  if (!split.ok()) {
    std::cerr << "qrank_serve: shard: " << split.status().ToString() << "\n";
    return 2;
  }
  const ShardMap& map = split.value().map;
  for (uint32_t s = 0; s < map.num_shards; ++s) {
    const uint32_t site_lo = map.site_boundaries[s];
    const uint32_t site_hi = map.site_boundaries[s + 1];
    const uint64_t page_lo = bundle.value().site_offsets()[site_lo];
    const uint64_t page_hi = bundle.value().site_offsets()[site_hi];
    std::printf("shard %u\t%" PRIu64 " pages\tsites [%u, %u)\t%s\n", s,
                page_hi - page_lo, site_lo, site_hi,
                split.value().bundle_paths[s].c_str());
  }
  std::printf("%s: %u shards, %" PRIu64 " pages, %u sites -> %s\n",
              path.c_str(), map.num_shards, map.total_pages, map.num_sites,
              split.value().map_path.c_str());
  return 0;
}

int Run(int argc, const char* const* argv) {
  if (argc < 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  // FlagParser skips its argv[0]; handing it argv + 1 makes the
  // subcommand that slot, so positional holds only the operands.
  FlagParser flags(argc - 1, argv + 1);
  const std::vector<std::string>& positional = flags.positional();
  int rc;
  if (command == "build" && positional.empty()) {
    rc = CmdBuild(flags);
  } else if (command == "inspect" && positional.size() == 1) {
    rc = CmdInspect(flags, positional[0]);
  } else if (command == "query" && positional.size() == 1) {
    rc = CmdQuery(flags, positional[0]);
  } else if (command == "bench" && positional.size() == 1) {
    rc = CmdBench(flags, positional[0]);
  } else if (command == "shard" && positional.size() == 1) {
    rc = CmdShard(flags, positional[0]);
  } else {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::cerr << "qrank_serve: unknown flag --" << unused.front() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  return rc;
}

}  // namespace
}  // namespace qrank

int main(int argc, char** argv) { return qrank::Run(argc, argv); }
