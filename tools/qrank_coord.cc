// qrank_coord: query a sharded score-bundle deployment (src/dist/)
// through the coordinator — fan-out, exact merge, deadlines, hedging.
//
// Usage:
//   qrank_coord query --map=FILE --workers=LIST [--k=N] [--alpha=X]
//                     [--site=N] [--epsilon=X] [--seed=N]
//                     [--deadline-ms=N] [--hedge-ms=N]
//   qrank_coord bench --map=FILE --workers=LIST [--queries=N] [--k=N]
//                     [--alpha=X] [--site=N] [--deadline-ms=N]
//                     [--hedge-ms=N]
//   qrank_coord info  --map=FILE --workers=LIST
//
// LIST is one host:port per shard, comma-separated, in shard order;
// append |host:port for an optional hedge replica, e.g.
//   --workers=127.0.0.1:7001,127.0.0.1:7002|127.0.0.1:7012
//
// `query` prints the same TSV rows as `qrank_serve query` — by the
// exact-merge contract (src/dist/coordinator.h) a non-degraded answer
// is byte-identical to the single-process output on the unsharded
// bundle, which is what the CI smoke test diffs. Rows are global rows.
// A degraded answer prints the partial rows plus `degraded ...` on
// stderr and exits 3. `bench` reports aggregate QPS + sampled p50/p99.
// `info` pings every shard and prints its shape and generation.
//
// Exit status: 0 = success, 2 = usage/connect error, 3 = degraded.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "dist/coordinator.h"
#include "dist/rpc.h"
#include "dist/shard_map.h"
#include "dist/wire_format.h"
#include "serve/query_engine.h"

namespace qrank {
namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: qrank_coord query --map=FILE --workers=LIST [--k=N]\n"
        "                         [--alpha=X] [--site=N] [--epsilon=X]\n"
        "                         [--seed=N] [--deadline-ms=N] "
        "[--hedge-ms=N]\n"
        "       qrank_coord bench --map=FILE --workers=LIST [--queries=N]\n"
        "                         [--k=N] [--alpha=X] [--site=N]\n"
        "                         [--deadline-ms=N] [--hedge-ms=N]\n"
        "       qrank_coord info  --map=FILE --workers=LIST\n"
        "  LIST = host:port[|replica_host:replica_port],... in shard "
        "order\n";
}

bool ParseEndpoint(const std::string& text, ShardEndpoint* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  int64_t port = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    port = port * 10 + (text[i] - '0');
    if (port > 65535) return false;
  }
  if (port == 0) return false;
  out->host = text.substr(0, colon);
  out->port = static_cast<uint16_t>(port);
  return true;
}

bool ParseWorkerList(const std::string& list,
                     std::vector<ShardAddress>* out) {
  out->clear();
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    if (item.empty()) return false;
    ShardAddress address;
    const size_t bar = item.find('|');
    if (bar == std::string::npos) {
      if (!ParseEndpoint(item, &address.primary)) return false;
    } else {
      if (!ParseEndpoint(item.substr(0, bar), &address.primary)) return false;
      if (!ParseEndpoint(item.substr(bar + 1), &address.replica)) {
        return false;
      }
      address.has_replica = true;
    }
    out->push_back(std::move(address));
    if (comma == list.size()) break;
    start = comma + 1;
  }
  return !out->empty();
}

struct Deployment {
  ShardMap map;
  std::vector<ShardAddress> shards;
  CoordinatorOptions options;
};

/// Parses --map/--workers/--deadline-ms/--hedge-ms. Returns exit code
/// 0 when parsing succeeded.
int LoadDeployment(FlagParser& flags, Deployment* out) {
  const std::string map_path = flags.GetString("map", "");
  const std::string workers = flags.GetString("workers", "");
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 250);
  const int64_t hedge_ms = flags.GetInt("hedge-ms", 60);
  if (!flags.status().ok() || map_path.empty() || workers.empty() ||
      deadline_ms <= 0 || hedge_ms <= 0) {
    PrintUsage(std::cerr);
    return 2;
  }
  Result<ShardMap> map = LoadShardMap(map_path);
  if (!map.ok()) {
    std::cerr << "qrank_coord: " << map_path << ": "
              << map.status().ToString() << "\n";
    return 2;
  }
  if (!ParseWorkerList(workers, &out->shards)) {
    std::cerr << "qrank_coord: malformed --workers list\n";
    return 2;
  }
  if (out->shards.size() != map.value().num_shards) {
    std::cerr << "qrank_coord: map has " << map.value().num_shards
              << " shards but --workers lists " << out->shards.size()
              << "\n";
    return 2;
  }
  out->map = std::move(map).value();
  out->options.query_deadline = std::chrono::milliseconds(deadline_ms);
  out->options.hedge_delay = std::chrono::milliseconds(hedge_ms);
  return 0;
}

Result<TopKQuery> QueryFromFlags(FlagParser& flags) {
  TopKQuery query;
  query.k = static_cast<uint32_t>(flags.GetInt("k", 10));
  query.blend_alpha = flags.GetDouble("alpha", 1.0);
  const int64_t site = flags.GetInt("site", -1);
  query.site = site < 0 ? kAllSites : static_cast<SiteId>(site);
  query.exploration_epsilon = flags.GetDouble("epsilon", 0.0);
  query.exploration_seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  if (!flags.status().ok()) return flags.status();
  return query;
}

int CmdQuery(FlagParser& flags) {
  Deployment deployment;
  int rc = LoadDeployment(flags, &deployment);
  Result<TopKQuery> query = QueryFromFlags(flags);
  if (rc != 0) return rc;
  if (!query.ok()) {
    PrintUsage(std::cerr);
    return 2;
  }
  Coordinator coord(std::move(deployment.map), std::move(deployment.shards),
                    deployment.options);
  Status st = coord.Start();
  if (!st.ok()) {
    std::cerr << "qrank_coord: start: " << st.ToString() << "\n";
    return 2;
  }
  DistTopKResult result;
  st = coord.TopK(query.value(), &result);
  if (!st.ok()) {
    std::cerr << "qrank_coord: query: " << st.ToString() << "\n";
    coord.Stop();
    return 2;
  }
  size_t rank = 1;
  for (const TopKEntry& e : result.entries) {
    std::printf("%zu\t%u\t%u\t%.17g\t%d\n", rank++, e.row, e.page_id,
                e.score, e.promoted ? 1 : 0);
  }
  if (result.degraded) {
    std::cerr << "degraded: " << result.shards_answered << "/"
              << result.shards_asked << " shards answered ("
              << result.hedges_fired << " hedges)\n";
  }
  coord.Stop();
  return result.degraded ? 3 : 0;
}

int CmdBench(FlagParser& flags) {
  Deployment deployment;
  int rc = LoadDeployment(flags, &deployment);
  Result<TopKQuery> query = QueryFromFlags(flags);
  const int64_t num_queries = flags.GetInt("queries", 2000);
  if (rc != 0) return rc;
  if (!query.ok() || !flags.status().ok() || num_queries <= 0) {
    PrintUsage(std::cerr);
    return 2;
  }
  Coordinator coord(std::move(deployment.map), std::move(deployment.shards),
                    deployment.options);
  Status st = coord.Start();
  if (!st.ok()) {
    std::cerr << "qrank_coord: start: " << st.ToString() << "\n";
    return 2;
  }
  TopKQuery q = query.value();
  DistTopKResult result;
  using Clock = std::chrono::steady_clock;
  std::vector<double> sampled_ns;  // every 16th query timed individually
  sampled_ns.reserve(static_cast<size_t>(num_queries) / 16 + 1);
  double checksum = 0.0;
  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < num_queries; ++i) {
    q.exploration_seed = static_cast<uint64_t>(i);
    const bool timed = (i & 15) == 0;
    const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
    st = coord.TopK(q, &result);
    if (!st.ok()) {
      std::cerr << "qrank_coord: query " << i << ": " << st.ToString()
                << "\n";
      coord.Stop();
      return 2;
    }
    if (timed) {
      sampled_ns.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
    if (!result.entries.empty()) checksum += result.entries[0].score;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(sampled_ns.begin(), sampled_ns.end());
  const auto percentile = [&sampled_ns](double p) {
    if (sampled_ns.empty()) return 0.0;
    const size_t i = static_cast<size_t>(p * (sampled_ns.size() - 1));
    return sampled_ns[i];
  };
  std::printf(
      "%u shards: %" PRId64 " queries in %.3f s = %.0f QPS "
      "(p50 %.0f ns, p99 %.0f ns, degraded %" PRIu64 ", hedges %" PRIu64
      ", checksum %.6g)\n",
      coord.shard_map().num_shards, num_queries, elapsed_s,
      num_queries / elapsed_s, percentile(0.50), percentile(0.99),
      coord.degraded_queries(), coord.hedges_fired(), checksum);
  const bool degraded = coord.degraded_queries() > 0;
  coord.Stop();
  return degraded ? 3 : 0;
}

int CmdInfo(FlagParser& flags) {
  Deployment deployment;
  const int rc = LoadDeployment(flags, &deployment);
  if (rc != 0) return rc;
  std::printf("map: %u shards, %" PRIu64 " pages, %u sites\n",
              deployment.map.num_shards, deployment.map.total_pages,
              deployment.map.num_sites);
  // Ping each worker directly: one InfoRequest per primary endpoint.
  int status = 0;
  std::vector<uint8_t> frame;
  for (uint32_t s = 0; s < deployment.map.num_shards; ++s) {
    const ShardEndpoint& ep = deployment.shards[s].primary;
    const RpcDeadline deadline =
        std::chrono::steady_clock::now() + deployment.options.query_deadline;
    const auto report = [&](const Status& st) {
      std::printf("shard %u\t%s:%u\tUNREACHABLE\t%s\n", s, ep.host.c_str(),
                  ep.port, st.ToString().c_str());
      status = 3;
    };
    Result<Socket> sock = Socket::Connect(ep.host, ep.port, deadline);
    if (!sock.ok()) {
      report(sock.status());
      continue;
    }
    EncodeInfoRequest(s + 1, &frame);
    Status st = SendFrame(sock.value(), frame, deadline);
    WireInfoResponse info;
    if (st.ok()) {
      Result<FrameHeader> header = RecvFrame(sock.value(), &frame, deadline);
      if (!header.ok()) {
        st = header.status();
      } else if (header.value().type != FrameType::kInfoResponse) {
        st = Status::Corruption("unexpected frame type from worker");
      } else {
        st = DecodeInfoResponse(
            std::span<const uint8_t>(frame).subspan(kFrameHeaderBytes),
            &info);
      }
    }
    if (!st.ok()) {
      report(st);
      continue;
    }
    std::printf("shard %u\t%s:%u\tshard_index=%u\tpages=%u\tgeneration=%"
                PRIu64 "%s\n",
                s, ep.host.c_str(), ep.port, info.shard_index,
                info.num_local_pages, info.generation,
                info.shard_index == s ? "" : "\tSHARD-MISMATCH");
    if (info.shard_index != s) status = 3;
  }
  return status;
}

int Run(int argc, const char* const* argv) {
  if (argc < 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  // FlagParser skips its argv[0]; handing it argv + 1 makes the
  // subcommand that slot, so positional holds only the operands.
  FlagParser flags(argc - 1, argv + 1);
  int rc;
  if (command == "query" && flags.positional().empty()) {
    rc = CmdQuery(flags);
  } else if (command == "bench" && flags.positional().empty()) {
    rc = CmdBench(flags);
  } else if (command == "info" && flags.positional().empty()) {
    rc = CmdInfo(flags);
  } else {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::cerr << "qrank_coord: unknown flag --" << unused.front() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  return rc;
}

}  // namespace
}  // namespace qrank

int main(int argc, char** argv) { return qrank::Run(argc, argv); }
