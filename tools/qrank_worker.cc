// qrank_worker: serve one shard of a site-partitioned score bundle
// (src/dist/) over the QRKF socket protocol.
//
// Usage:
//   qrank_worker --bundle=shard_<i>.qrkb --meta=shard_<i>.qrks
//                [--host=ADDR] [--port=N] [--port-file=PATH]
//                [--response-delay-ms=N]
//
// Loads the shard bundle + QRKS sidecar, binds (an ephemeral port when
// --port=0, the default), then serves until SIGINT/SIGTERM. The bound
// port is printed on stdout as `port <N>` and, with --port-file,
// written to PATH — that is how test harnesses discover ephemeral
// ports race-free. --response-delay-ms exposes the fault-injection
// hook that holds each TopK response before sending (tests only).
//
// Exit status: 0 = clean shutdown on signal, 2 = usage or I/O error.

#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/status.h"
#include "dist/worker.h"

namespace qrank {
namespace {

// Self-pipe written from the signal handler; the main thread polls it.
// (sig_atomic_t spin loops burn CPU and signalfd is Linux-only lore
// this tool does not need.)
int g_signal_pipe[2] = {-1, -1};

extern "C" void OnShutdownSignal(int /*signo*/) {
  const char byte = 1;
  // Best effort; a full pipe already means a wakeup is pending.
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

void PrintUsage(std::ostream& os) {
  os << "usage: qrank_worker --bundle=shard_<i>.qrkb --meta=shard_<i>.qrks\n"
        "                    [--host=ADDR] [--port=N] [--port-file=PATH]\n"
        "                    [--response-delay-ms=N]\n";
}

int Run(int argc, const char* const* argv) {
  FlagParser flags(argc, argv);
  const std::string bundle_path = flags.GetString("bundle", "");
  const std::string meta_path = flags.GetString("meta", "");
  const std::string port_file = flags.GetString("port-file", "");
  WorkerServer::Options options;
  options.host = flags.GetString("host", "127.0.0.1");
  const int64_t port = flags.GetInt("port", 0);
  const int64_t delay_ms = flags.GetInt("response-delay-ms", 0);
  if (!flags.status().ok() || !flags.positional().empty() ||
      bundle_path.empty() || meta_path.empty() || port < 0 || port > 65535 ||
      delay_ms < 0) {
    PrintUsage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::cerr << "qrank_worker: unknown flag --" << unused.front() << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.test_response_delay = std::chrono::milliseconds(delay_ms);

  WorkerServer worker(options);
  Status st = worker.Init(bundle_path, meta_path);
  if (!st.ok()) {
    std::cerr << "qrank_worker: init: " << st.ToString() << "\n";
    return 2;
  }
  st = worker.Start();
  if (!st.ok()) {
    std::cerr << "qrank_worker: start: " << st.ToString() << "\n";
    return 2;
  }
  std::printf("shard %u: %u pages on %s:%u\n", worker.shard_index(),
              worker.num_local_pages(), options.host.c_str(), worker.port());
  std::printf("port %u\n", worker.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << worker.port() << "\n";
    if (!out) {
      std::cerr << "qrank_worker: cannot write " << port_file << "\n";
      return 2;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "qrank_worker: pipe failed\n";
    return 2;
  }
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  struct pollfd pfd = {};
  pfd.fd = g_signal_pipe[0];
  pfd.events = POLLIN;
  while (poll(&pfd, 1, -1) < 0) {
    // EINTR from the very signal we are waiting for still wakes us via
    // the pipe on the next iteration.
  }
  std::printf("shard %u: shutting down (%" PRIu64 " queries served)\n",
              worker.shard_index(), worker.queries_served());
  worker.Stop();
  return 0;
}

}  // namespace
}  // namespace qrank

int main(int argc, char** argv) { return qrank::Run(argc, argv); }
