file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_pagerank.dir/bench_perf_pagerank.cc.o"
  "CMakeFiles/bench_perf_pagerank.dir/bench_perf_pagerank.cc.o.d"
  "bench_perf_pagerank"
  "bench_perf_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
