# Empty compiler generated dependencies file for bench_perf_pagerank.
# This may be replaced when dependencies are built.
