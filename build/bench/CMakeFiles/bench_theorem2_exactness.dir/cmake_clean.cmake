file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2_exactness.dir/bench_theorem2_exactness.cc.o"
  "CMakeFiles/bench_theorem2_exactness.dir/bench_theorem2_exactness.cc.o.d"
  "bench_theorem2_exactness"
  "bench_theorem2_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
