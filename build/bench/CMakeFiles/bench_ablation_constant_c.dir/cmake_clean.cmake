file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_constant_c.dir/bench_ablation_constant_c.cc.o"
  "CMakeFiles/bench_ablation_constant_c.dir/bench_ablation_constant_c.cc.o.d"
  "bench_ablation_constant_c"
  "bench_ablation_constant_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_constant_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
