# Empty compiler generated dependencies file for bench_ablation_constant_c.
# This may be replaced when dependencies are built.
