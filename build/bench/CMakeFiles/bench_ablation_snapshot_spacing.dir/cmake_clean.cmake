file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snapshot_spacing.dir/bench_ablation_snapshot_spacing.cc.o"
  "CMakeFiles/bench_ablation_snapshot_spacing.dir/bench_ablation_snapshot_spacing.cc.o.d"
  "bench_ablation_snapshot_spacing"
  "bench_ablation_snapshot_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snapshot_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
