file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_estimator_sum.dir/bench_fig3_estimator_sum.cc.o"
  "CMakeFiles/bench_fig3_estimator_sum.dir/bench_fig3_estimator_sum.cc.o.d"
  "bench_fig3_estimator_sum"
  "bench_fig3_estimator_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_estimator_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
