# Empty dependencies file for bench_truth_error.
# This may be replaced when dependencies are built.
