file(REMOVE_RECURSE
  "CMakeFiles/bench_truth_error.dir/bench_truth_error.cc.o"
  "CMakeFiles/bench_truth_error.dir/bench_truth_error.cc.o.d"
  "bench_truth_error"
  "bench_truth_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truth_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
