file(REMOVE_RECURSE
  "CMakeFiles/bench_rich_get_richer.dir/bench_rich_get_richer.cc.o"
  "CMakeFiles/bench_rich_get_richer.dir/bench_rich_get_richer.cc.o.d"
  "bench_rich_get_richer"
  "bench_rich_get_richer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rich_get_richer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
