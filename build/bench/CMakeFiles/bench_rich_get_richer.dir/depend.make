# Empty dependencies file for bench_rich_get_richer.
# This may be replaced when dependencies are built.
