file(REMOVE_RECURSE
  "CMakeFiles/bench_population_agreement.dir/bench_population_agreement.cc.o"
  "CMakeFiles/bench_population_agreement.dir/bench_population_agreement.cc.o.d"
  "bench_population_agreement"
  "bench_population_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_population_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
