# Empty dependencies file for bench_population_agreement.
# This may be replaced when dependencies are built.
