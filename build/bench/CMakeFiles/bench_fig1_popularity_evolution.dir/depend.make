# Empty dependencies file for bench_fig1_popularity_evolution.
# This may be replaced when dependencies are built.
