file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_popularity_evolution.dir/bench_fig1_popularity_evolution.cc.o"
  "CMakeFiles/bench_fig1_popularity_evolution.dir/bench_fig1_popularity_evolution.cc.o.d"
  "bench_fig1_popularity_evolution"
  "bench_fig1_popularity_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_popularity_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
