# Empty dependencies file for bench_fig2_relative_increase.
# This may be replaced when dependencies are built.
