# Empty dependencies file for new_page_discovery.
# This may be replaced when dependencies are built.
