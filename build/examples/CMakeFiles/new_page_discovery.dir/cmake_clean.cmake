file(REMOVE_RECURSE
  "CMakeFiles/new_page_discovery.dir/new_page_discovery.cpp.o"
  "CMakeFiles/new_page_discovery.dir/new_page_discovery.cpp.o.d"
  "new_page_discovery"
  "new_page_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_page_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
