# Empty compiler generated dependencies file for crawl_pipeline.
# This may be replaced when dependencies are built.
