file(REMOVE_RECURSE
  "CMakeFiles/traffic_quality.dir/traffic_quality.cpp.o"
  "CMakeFiles/traffic_quality.dir/traffic_quality.cpp.o.d"
  "traffic_quality"
  "traffic_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
