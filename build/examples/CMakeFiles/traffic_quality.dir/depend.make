# Empty dependencies file for traffic_quality.
# This may be replaced when dependencies are built.
