# Empty dependencies file for ranking_engines.
# This may be replaced when dependencies are built.
