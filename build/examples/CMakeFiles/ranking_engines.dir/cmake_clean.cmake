file(REMOVE_RECURSE
  "CMakeFiles/ranking_engines.dir/ranking_engines.cpp.o"
  "CMakeFiles/ranking_engines.dir/ranking_engines.cpp.o.d"
  "ranking_engines"
  "ranking_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
