# Empty dependencies file for population_model_test.
# This may be replaced when dependencies are built.
