file(REMOVE_RECURSE
  "CMakeFiles/population_model_test.dir/model/population_model_test.cc.o"
  "CMakeFiles/population_model_test.dir/model/population_model_test.cc.o.d"
  "population_model_test"
  "population_model_test.pdb"
  "population_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
