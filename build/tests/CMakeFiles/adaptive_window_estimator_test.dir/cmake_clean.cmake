file(REMOVE_RECURSE
  "CMakeFiles/adaptive_window_estimator_test.dir/core/adaptive_window_estimator_test.cc.o"
  "CMakeFiles/adaptive_window_estimator_test.dir/core/adaptive_window_estimator_test.cc.o.d"
  "adaptive_window_estimator_test"
  "adaptive_window_estimator_test.pdb"
  "adaptive_window_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_window_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
