# Empty compiler generated dependencies file for adaptive_window_estimator_test.
# This may be replaced when dependencies are built.
