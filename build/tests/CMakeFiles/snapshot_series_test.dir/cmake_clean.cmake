file(REMOVE_RECURSE
  "CMakeFiles/snapshot_series_test.dir/core/snapshot_series_test.cc.o"
  "CMakeFiles/snapshot_series_test.dir/core/snapshot_series_test.cc.o.d"
  "snapshot_series_test"
  "snapshot_series_test.pdb"
  "snapshot_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
