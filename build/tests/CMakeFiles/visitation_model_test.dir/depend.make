# Empty dependencies file for visitation_model_test.
# This may be replaced when dependencies are built.
