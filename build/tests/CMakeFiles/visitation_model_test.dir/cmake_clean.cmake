file(REMOVE_RECURSE
  "CMakeFiles/visitation_model_test.dir/model/visitation_model_test.cc.o"
  "CMakeFiles/visitation_model_test.dir/model/visitation_model_test.cc.o.d"
  "visitation_model_test"
  "visitation_model_test.pdb"
  "visitation_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visitation_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
