file(REMOVE_RECURSE
  "CMakeFiles/topic_sensitive_test.dir/rank/topic_sensitive_test.cc.o"
  "CMakeFiles/topic_sensitive_test.dir/rank/topic_sensitive_test.cc.o.d"
  "topic_sensitive_test"
  "topic_sensitive_test.pdb"
  "topic_sensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_sensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
