file(REMOVE_RECURSE
  "CMakeFiles/traffic_estimator_test.dir/core/traffic_estimator_test.cc.o"
  "CMakeFiles/traffic_estimator_test.dir/core/traffic_estimator_test.cc.o.d"
  "traffic_estimator_test"
  "traffic_estimator_test.pdb"
  "traffic_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
