# Empty compiler generated dependencies file for traffic_estimator_test.
# This may be replaced when dependencies are built.
