file(REMOVE_RECURSE
  "CMakeFiles/forgetting_model_test.dir/model/forgetting_model_test.cc.o"
  "CMakeFiles/forgetting_model_test.dir/model/forgetting_model_test.cc.o.d"
  "forgetting_model_test"
  "forgetting_model_test.pdb"
  "forgetting_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forgetting_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
