# Empty compiler generated dependencies file for forgetting_model_test.
# This may be replaced when dependencies are built.
