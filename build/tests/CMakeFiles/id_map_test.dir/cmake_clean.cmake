file(REMOVE_RECURSE
  "CMakeFiles/id_map_test.dir/graph/id_map_test.cc.o"
  "CMakeFiles/id_map_test.dir/graph/id_map_test.cc.o.d"
  "id_map_test"
  "id_map_test.pdb"
  "id_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
