# Empty compiler generated dependencies file for id_map_test.
# This may be replaced when dependencies are built.
