
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/edge_list_test.cc" "tests/CMakeFiles/edge_list_test.dir/graph/edge_list_test.cc.o" "gcc" "tests/CMakeFiles/edge_list_test.dir/graph/edge_list_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qrank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/qrank_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qrank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/qrank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
