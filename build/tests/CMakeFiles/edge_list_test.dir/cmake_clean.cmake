file(REMOVE_RECURSE
  "CMakeFiles/edge_list_test.dir/graph/edge_list_test.cc.o"
  "CMakeFiles/edge_list_test.dir/graph/edge_list_test.cc.o.d"
  "edge_list_test"
  "edge_list_test.pdb"
  "edge_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
