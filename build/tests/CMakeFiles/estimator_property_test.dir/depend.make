# Empty dependencies file for estimator_property_test.
# This may be replaced when dependencies are built.
