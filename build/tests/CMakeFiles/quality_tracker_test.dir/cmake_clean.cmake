file(REMOVE_RECURSE
  "CMakeFiles/quality_tracker_test.dir/core/quality_tracker_test.cc.o"
  "CMakeFiles/quality_tracker_test.dir/core/quality_tracker_test.cc.o.d"
  "quality_tracker_test"
  "quality_tracker_test.pdb"
  "quality_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
