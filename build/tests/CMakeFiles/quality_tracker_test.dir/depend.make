# Empty dependencies file for quality_tracker_test.
# This may be replaced when dependencies are built.
