# Empty compiler generated dependencies file for bias_metrics_test.
# This may be replaced when dependencies are built.
