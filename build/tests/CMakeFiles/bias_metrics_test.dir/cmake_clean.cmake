file(REMOVE_RECURSE
  "CMakeFiles/bias_metrics_test.dir/core/bias_metrics_test.cc.o"
  "CMakeFiles/bias_metrics_test.dir/core/bias_metrics_test.cc.o.d"
  "bias_metrics_test"
  "bias_metrics_test.pdb"
  "bias_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bias_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
