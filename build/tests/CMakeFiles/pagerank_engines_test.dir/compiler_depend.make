# Empty compiler generated dependencies file for pagerank_engines_test.
# This may be replaced when dependencies are built.
