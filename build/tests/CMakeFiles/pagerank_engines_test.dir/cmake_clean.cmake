file(REMOVE_RECURSE
  "CMakeFiles/pagerank_engines_test.dir/rank/pagerank_engines_test.cc.o"
  "CMakeFiles/pagerank_engines_test.dir/rank/pagerank_engines_test.cc.o.d"
  "pagerank_engines_test"
  "pagerank_engines_test.pdb"
  "pagerank_engines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
