file(REMOVE_RECURSE
  "CMakeFiles/site_graph_test.dir/graph/site_graph_test.cc.o"
  "CMakeFiles/site_graph_test.dir/graph/site_graph_test.cc.o.d"
  "site_graph_test"
  "site_graph_test.pdb"
  "site_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
