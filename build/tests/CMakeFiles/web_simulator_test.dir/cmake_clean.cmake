file(REMOVE_RECURSE
  "CMakeFiles/web_simulator_test.dir/sim/web_simulator_test.cc.o"
  "CMakeFiles/web_simulator_test.dir/sim/web_simulator_test.cc.o.d"
  "web_simulator_test"
  "web_simulator_test.pdb"
  "web_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
