file(REMOVE_RECURSE
  "CMakeFiles/visit_trace_test.dir/core/visit_trace_test.cc.o"
  "CMakeFiles/visit_trace_test.dir/core/visit_trace_test.cc.o.d"
  "visit_trace_test"
  "visit_trace_test.pdb"
  "visit_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visit_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
