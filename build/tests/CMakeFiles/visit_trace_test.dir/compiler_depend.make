# Empty compiler generated dependencies file for visit_trace_test.
# This may be replaced when dependencies are built.
