# Empty compiler generated dependencies file for traffic_rank_test.
# This may be replaced when dependencies are built.
