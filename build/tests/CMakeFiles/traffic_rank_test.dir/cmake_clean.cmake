file(REMOVE_RECURSE
  "CMakeFiles/traffic_rank_test.dir/rank/traffic_rank_test.cc.o"
  "CMakeFiles/traffic_rank_test.dir/rank/traffic_rank_test.cc.o.d"
  "traffic_rank_test"
  "traffic_rank_test.pdb"
  "traffic_rank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
