# Empty dependencies file for experiment_report_test.
# This may be replaced when dependencies are built.
