file(REMOVE_RECURSE
  "CMakeFiles/experiment_report_test.dir/core/experiment_report_test.cc.o"
  "CMakeFiles/experiment_report_test.dir/core/experiment_report_test.cc.o.d"
  "experiment_report_test"
  "experiment_report_test.pdb"
  "experiment_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
