# Empty compiler generated dependencies file for search_feedback_test.
# This may be replaced when dependencies are built.
