file(REMOVE_RECURSE
  "CMakeFiles/search_feedback_test.dir/sim/search_feedback_test.cc.o"
  "CMakeFiles/search_feedback_test.dir/sim/search_feedback_test.cc.o.d"
  "search_feedback_test"
  "search_feedback_test.pdb"
  "search_feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
