# Empty dependencies file for quality_estimator_test.
# This may be replaced when dependencies are built.
