file(REMOVE_RECURSE
  "CMakeFiles/quality_estimator_test.dir/core/quality_estimator_test.cc.o"
  "CMakeFiles/quality_estimator_test.dir/core/quality_estimator_test.cc.o.d"
  "quality_estimator_test"
  "quality_estimator_test.pdb"
  "quality_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
