# Empty compiler generated dependencies file for rank_vector_test.
# This may be replaced when dependencies are built.
