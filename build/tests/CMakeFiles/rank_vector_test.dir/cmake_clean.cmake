file(REMOVE_RECURSE
  "CMakeFiles/rank_vector_test.dir/rank/rank_vector_test.cc.o"
  "CMakeFiles/rank_vector_test.dir/rank/rank_vector_test.cc.o.d"
  "rank_vector_test"
  "rank_vector_test.pdb"
  "rank_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
