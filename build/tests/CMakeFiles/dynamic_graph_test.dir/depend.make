# Empty dependencies file for dynamic_graph_test.
# This may be replaced when dependencies are built.
