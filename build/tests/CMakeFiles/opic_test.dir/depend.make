# Empty dependencies file for opic_test.
# This may be replaced when dependencies are built.
