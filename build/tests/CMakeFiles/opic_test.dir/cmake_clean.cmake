file(REMOVE_RECURSE
  "CMakeFiles/opic_test.dir/rank/opic_test.cc.o"
  "CMakeFiles/opic_test.dir/rank/opic_test.cc.o.d"
  "opic_test"
  "opic_test.pdb"
  "opic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
