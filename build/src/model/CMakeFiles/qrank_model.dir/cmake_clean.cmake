file(REMOVE_RECURSE
  "CMakeFiles/qrank_model.dir/forgetting_model.cc.o"
  "CMakeFiles/qrank_model.dir/forgetting_model.cc.o.d"
  "CMakeFiles/qrank_model.dir/ode.cc.o"
  "CMakeFiles/qrank_model.dir/ode.cc.o.d"
  "CMakeFiles/qrank_model.dir/population_model.cc.o"
  "CMakeFiles/qrank_model.dir/population_model.cc.o.d"
  "CMakeFiles/qrank_model.dir/visitation_model.cc.o"
  "CMakeFiles/qrank_model.dir/visitation_model.cc.o.d"
  "libqrank_model.a"
  "libqrank_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
