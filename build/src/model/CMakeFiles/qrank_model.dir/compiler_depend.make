# Empty compiler generated dependencies file for qrank_model.
# This may be replaced when dependencies are built.
