
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/forgetting_model.cc" "src/model/CMakeFiles/qrank_model.dir/forgetting_model.cc.o" "gcc" "src/model/CMakeFiles/qrank_model.dir/forgetting_model.cc.o.d"
  "/root/repo/src/model/ode.cc" "src/model/CMakeFiles/qrank_model.dir/ode.cc.o" "gcc" "src/model/CMakeFiles/qrank_model.dir/ode.cc.o.d"
  "/root/repo/src/model/population_model.cc" "src/model/CMakeFiles/qrank_model.dir/population_model.cc.o" "gcc" "src/model/CMakeFiles/qrank_model.dir/population_model.cc.o.d"
  "/root/repo/src/model/visitation_model.cc" "src/model/CMakeFiles/qrank_model.dir/visitation_model.cc.o" "gcc" "src/model/CMakeFiles/qrank_model.dir/visitation_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
