file(REMOVE_RECURSE
  "libqrank_model.a"
)
