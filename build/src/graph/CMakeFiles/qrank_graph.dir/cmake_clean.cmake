file(REMOVE_RECURSE
  "CMakeFiles/qrank_graph.dir/analysis.cc.o"
  "CMakeFiles/qrank_graph.dir/analysis.cc.o.d"
  "CMakeFiles/qrank_graph.dir/csr_graph.cc.o"
  "CMakeFiles/qrank_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/qrank_graph.dir/dynamic_graph.cc.o"
  "CMakeFiles/qrank_graph.dir/dynamic_graph.cc.o.d"
  "CMakeFiles/qrank_graph.dir/edge_list.cc.o"
  "CMakeFiles/qrank_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/qrank_graph.dir/generators.cc.o"
  "CMakeFiles/qrank_graph.dir/generators.cc.o.d"
  "CMakeFiles/qrank_graph.dir/graph_io.cc.o"
  "CMakeFiles/qrank_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/qrank_graph.dir/id_map.cc.o"
  "CMakeFiles/qrank_graph.dir/id_map.cc.o.d"
  "CMakeFiles/qrank_graph.dir/site_graph.cc.o"
  "CMakeFiles/qrank_graph.dir/site_graph.cc.o.d"
  "libqrank_graph.a"
  "libqrank_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
