# Empty dependencies file for qrank_graph.
# This may be replaced when dependencies are built.
