file(REMOVE_RECURSE
  "libqrank_graph.a"
)
