
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/adaptive_pagerank.cc" "src/rank/CMakeFiles/qrank_rank.dir/adaptive_pagerank.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/adaptive_pagerank.cc.o.d"
  "/root/repo/src/rank/baselines.cc" "src/rank/CMakeFiles/qrank_rank.dir/baselines.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/baselines.cc.o.d"
  "/root/repo/src/rank/extrapolation.cc" "src/rank/CMakeFiles/qrank_rank.dir/extrapolation.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/extrapolation.cc.o.d"
  "/root/repo/src/rank/hits.cc" "src/rank/CMakeFiles/qrank_rank.dir/hits.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/hits.cc.o.d"
  "/root/repo/src/rank/opic.cc" "src/rank/CMakeFiles/qrank_rank.dir/opic.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/opic.cc.o.d"
  "/root/repo/src/rank/pagerank.cc" "src/rank/CMakeFiles/qrank_rank.dir/pagerank.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/pagerank.cc.o.d"
  "/root/repo/src/rank/rank_vector.cc" "src/rank/CMakeFiles/qrank_rank.dir/rank_vector.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/rank_vector.cc.o.d"
  "/root/repo/src/rank/topic_sensitive.cc" "src/rank/CMakeFiles/qrank_rank.dir/topic_sensitive.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/topic_sensitive.cc.o.d"
  "/root/repo/src/rank/traffic_rank.cc" "src/rank/CMakeFiles/qrank_rank.dir/traffic_rank.cc.o" "gcc" "src/rank/CMakeFiles/qrank_rank.dir/traffic_rank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
