# Empty compiler generated dependencies file for qrank_rank.
# This may be replaced when dependencies are built.
