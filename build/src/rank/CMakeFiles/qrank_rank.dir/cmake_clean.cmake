file(REMOVE_RECURSE
  "CMakeFiles/qrank_rank.dir/adaptive_pagerank.cc.o"
  "CMakeFiles/qrank_rank.dir/adaptive_pagerank.cc.o.d"
  "CMakeFiles/qrank_rank.dir/baselines.cc.o"
  "CMakeFiles/qrank_rank.dir/baselines.cc.o.d"
  "CMakeFiles/qrank_rank.dir/extrapolation.cc.o"
  "CMakeFiles/qrank_rank.dir/extrapolation.cc.o.d"
  "CMakeFiles/qrank_rank.dir/hits.cc.o"
  "CMakeFiles/qrank_rank.dir/hits.cc.o.d"
  "CMakeFiles/qrank_rank.dir/opic.cc.o"
  "CMakeFiles/qrank_rank.dir/opic.cc.o.d"
  "CMakeFiles/qrank_rank.dir/pagerank.cc.o"
  "CMakeFiles/qrank_rank.dir/pagerank.cc.o.d"
  "CMakeFiles/qrank_rank.dir/rank_vector.cc.o"
  "CMakeFiles/qrank_rank.dir/rank_vector.cc.o.d"
  "CMakeFiles/qrank_rank.dir/topic_sensitive.cc.o"
  "CMakeFiles/qrank_rank.dir/topic_sensitive.cc.o.d"
  "CMakeFiles/qrank_rank.dir/traffic_rank.cc.o"
  "CMakeFiles/qrank_rank.dir/traffic_rank.cc.o.d"
  "libqrank_rank.a"
  "libqrank_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
