file(REMOVE_RECURSE
  "libqrank_rank.a"
)
