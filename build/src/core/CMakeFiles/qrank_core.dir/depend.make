# Empty dependencies file for qrank_core.
# This may be replaced when dependencies are built.
