file(REMOVE_RECURSE
  "CMakeFiles/qrank_core.dir/adaptive_window_estimator.cc.o"
  "CMakeFiles/qrank_core.dir/adaptive_window_estimator.cc.o.d"
  "CMakeFiles/qrank_core.dir/bias_metrics.cc.o"
  "CMakeFiles/qrank_core.dir/bias_metrics.cc.o.d"
  "CMakeFiles/qrank_core.dir/evaluation.cc.o"
  "CMakeFiles/qrank_core.dir/evaluation.cc.o.d"
  "CMakeFiles/qrank_core.dir/experiment.cc.o"
  "CMakeFiles/qrank_core.dir/experiment.cc.o.d"
  "CMakeFiles/qrank_core.dir/experiment_report.cc.o"
  "CMakeFiles/qrank_core.dir/experiment_report.cc.o.d"
  "CMakeFiles/qrank_core.dir/quality_estimator.cc.o"
  "CMakeFiles/qrank_core.dir/quality_estimator.cc.o.d"
  "CMakeFiles/qrank_core.dir/quality_tracker.cc.o"
  "CMakeFiles/qrank_core.dir/quality_tracker.cc.o.d"
  "CMakeFiles/qrank_core.dir/snapshot_series.cc.o"
  "CMakeFiles/qrank_core.dir/snapshot_series.cc.o.d"
  "CMakeFiles/qrank_core.dir/traffic_estimator.cc.o"
  "CMakeFiles/qrank_core.dir/traffic_estimator.cc.o.d"
  "CMakeFiles/qrank_core.dir/visit_trace.cc.o"
  "CMakeFiles/qrank_core.dir/visit_trace.cc.o.d"
  "libqrank_core.a"
  "libqrank_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
