
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_window_estimator.cc" "src/core/CMakeFiles/qrank_core.dir/adaptive_window_estimator.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/adaptive_window_estimator.cc.o.d"
  "/root/repo/src/core/bias_metrics.cc" "src/core/CMakeFiles/qrank_core.dir/bias_metrics.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/bias_metrics.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/qrank_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/qrank_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/experiment_report.cc" "src/core/CMakeFiles/qrank_core.dir/experiment_report.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/experiment_report.cc.o.d"
  "/root/repo/src/core/quality_estimator.cc" "src/core/CMakeFiles/qrank_core.dir/quality_estimator.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/quality_estimator.cc.o.d"
  "/root/repo/src/core/quality_tracker.cc" "src/core/CMakeFiles/qrank_core.dir/quality_tracker.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/quality_tracker.cc.o.d"
  "/root/repo/src/core/snapshot_series.cc" "src/core/CMakeFiles/qrank_core.dir/snapshot_series.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/snapshot_series.cc.o.d"
  "/root/repo/src/core/traffic_estimator.cc" "src/core/CMakeFiles/qrank_core.dir/traffic_estimator.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/traffic_estimator.cc.o.d"
  "/root/repo/src/core/visit_trace.cc" "src/core/CMakeFiles/qrank_core.dir/visit_trace.cc.o" "gcc" "src/core/CMakeFiles/qrank_core.dir/visit_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rank/CMakeFiles/qrank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qrank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qrank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
