file(REMOVE_RECURSE
  "libqrank_core.a"
)
