# Empty compiler generated dependencies file for qrank_common.
# This may be replaced when dependencies are built.
