file(REMOVE_RECURSE
  "CMakeFiles/qrank_common.dir/flags.cc.o"
  "CMakeFiles/qrank_common.dir/flags.cc.o.d"
  "CMakeFiles/qrank_common.dir/logging.cc.o"
  "CMakeFiles/qrank_common.dir/logging.cc.o.d"
  "CMakeFiles/qrank_common.dir/rng.cc.o"
  "CMakeFiles/qrank_common.dir/rng.cc.o.d"
  "CMakeFiles/qrank_common.dir/stats.cc.o"
  "CMakeFiles/qrank_common.dir/stats.cc.o.d"
  "CMakeFiles/qrank_common.dir/status.cc.o"
  "CMakeFiles/qrank_common.dir/status.cc.o.d"
  "CMakeFiles/qrank_common.dir/table_writer.cc.o"
  "CMakeFiles/qrank_common.dir/table_writer.cc.o.d"
  "libqrank_common.a"
  "libqrank_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
