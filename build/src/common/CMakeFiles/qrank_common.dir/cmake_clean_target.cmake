file(REMOVE_RECURSE
  "libqrank_common.a"
)
