file(REMOVE_RECURSE
  "CMakeFiles/qrank_sim.dir/crawler.cc.o"
  "CMakeFiles/qrank_sim.dir/crawler.cc.o.d"
  "CMakeFiles/qrank_sim.dir/search_engine.cc.o"
  "CMakeFiles/qrank_sim.dir/search_engine.cc.o.d"
  "CMakeFiles/qrank_sim.dir/web_simulator.cc.o"
  "CMakeFiles/qrank_sim.dir/web_simulator.cc.o.d"
  "libqrank_sim.a"
  "libqrank_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrank_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
