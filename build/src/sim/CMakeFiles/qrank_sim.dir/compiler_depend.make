# Empty compiler generated dependencies file for qrank_sim.
# This may be replaced when dependencies are built.
