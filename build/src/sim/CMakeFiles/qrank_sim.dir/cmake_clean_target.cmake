file(REMOVE_RECURSE
  "libqrank_sim.a"
)
