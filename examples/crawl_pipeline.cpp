// File-based crawl pipeline: what a downstream user runs on their own
// crawl snapshots.
//
//   1. (Stand-in for a crawler) simulate a web and WRITE four snapshot
//      edge-list files, as a crawler would produce.
//   2. READ the snapshot files back, compute PageRank per snapshot over
//      the common pages, estimate page quality (Equation 1).
//   3. Write a CSV report (page, trend, PR(t1), PR(t3), quality) and
//      print the top pages by each metric.
//
// Usage:  ./build/examples/crawl_pipeline [output_dir] [--incremental]
//             [--order=NAME] [--partition=node|edge] [--kernel=NAME]
//             [--compressed=BOOL]
// (default output dir: /tmp/qrank_crawl)
//
// --incremental switches the per-snapshot PageRank stage to the delta
// pipeline (patched CSR + warm-started frozen-set solves); results match
// the from-scratch mode within the engine tolerance. The solver knobs
// are the shared set from rank/solver_flags.h: --order relabels every
// snapshot for cache locality (safe here — page ids are pure labels and
// the report is emitted in original ids), and --partition / --kernel /
// --compressed select the sweep configuration.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/flags.h"
#include "common/table_writer.h"
#include "rank/solver_flags.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "graph/graph_io.h"
#include "rank/rank_vector.h"
#include "sim/web_simulator.h"

namespace {

const double kSnapshotTimes[] = {16.0, 20.0, 24.0};

const char* TrendName(qrank::PageTrend t) {
  switch (t) {
    case qrank::PageTrend::kRising:
      return "rising";
    case qrank::PageTrend::kFalling:
      return "falling";
    case qrank::PageTrend::kOscillating:
      return "oscillating";
    case qrank::PageTrend::kStable:
      return "stable";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  qrank::FlagParser flags(argc, argv);
  const bool incremental = flags.GetBool("incremental", false);
  std::string dir = flags.positional().empty() ? "/tmp/qrank_crawl"
                                               : flags.positional()[0];
  qrank::SeriesComputeOptions series_options;
  const qrank::Status solver_st =
      qrank::ApplySolverFlags(flags, &series_options.pagerank);
  const qrank::Result<qrank::NodeOrdering> ordering =
      qrank::OrderingFlag(flags);
  if (!solver_st.ok() || !ordering.ok() || !flags.status().ok() ||
      !flags.UnusedFlags().empty()) {
    if (!solver_st.ok()) {
      std::fprintf(stderr, "%s\n", solver_st.ToString().c_str());
    }
    if (!ordering.ok()) {
      std::fprintf(stderr, "%s\n", ordering.status().ToString().c_str());
    }
    std::fprintf(stderr,
                 "usage: crawl_pipeline [output_dir] [--incremental]\n"
                 "           %s\n           %s\n",
                 qrank::kOrderFlagUsage, qrank::kSolverFlagsUsage);
    return EXIT_FAILURE;
  }
  series_options.ordering = ordering.value();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return EXIT_FAILURE;
  }

  // --- Stage 1: "crawl" (simulate) and persist snapshots.
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 800;
  sim_options.seed = 1;
  sim_options.page_birth_rate = 20.0;
  sim_options.visit_rate_factor = 2.0;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) return EXIT_FAILURE;

  std::printf("stage 1: crawling (simulated) -> %s\n", dir.c_str());
  int snap_index = 0;
  for (double t : kSnapshotTimes) {
    if (!sim->AdvanceTo(t).ok()) return EXIT_FAILURE;
    std::string path = dir + "/snapshot_" + std::to_string(snap_index++) +
                       ".edges";
    qrank::Status st =
        qrank::WriteEdgeListText(sim->graph().EdgesAt(sim->now()), path);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("  wrote %s (t=%.0f)\n", path.c_str(), t);
  }

  // --- Stage 2: load snapshots and estimate quality.
  std::printf("\nstage 2: loading snapshots and estimating quality\n");
  qrank::SnapshotSeries series;
  for (int i = 0; i < 3; ++i) {
    std::string path = dir + "/snapshot_" + std::to_string(i) + ".edges";
    auto edges = qrank::ReadEdgeListText(path);
    if (!edges.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   edges.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    auto graph = qrank::CsrGraph::FromEdgeList(edges.value());
    if (!graph.ok() ||
        !series.AddSnapshot(kSnapshotTimes[i], std::move(graph).value())
             .ok()) {
      return EXIT_FAILURE;
    }
  }
  series_options.pagerank.scale = qrank::ScaleConvention::kTotalMassN;
  series_options.mode = incremental ? qrank::SeriesMode::kIncremental
                                    : qrank::SeriesMode::kScratch;
  std::printf("  PageRank mode: %s\n",
              incremental ? "incremental (delta CSR + warm start)"
                          : "from scratch");
  if (!series.ComputePageRanks(series_options).ok()) return EXIT_FAILURE;
  auto estimate = qrank::EstimateQuality(series, 3);
  if (!estimate.ok()) return EXIT_FAILURE;

  const qrank::NodeId common = series.CommonNodeCount();
  std::printf("  %u common pages across %zu snapshots\n", common,
              series.num_snapshots());

  // --- Stage 3: report.
  qrank::TableWriter csv({"page", "trend", "pagerank_t1", "pagerank_t3",
                          "quality_estimate"});
  for (qrank::NodeId p = 0; p < common; ++p) {
    csv.AddRow({std::to_string(p), TrendName(estimate->trend[p]),
                qrank::TableWriter::FormatDouble(series.pagerank(0)[p], 6),
                qrank::TableWriter::FormatDouble(series.pagerank(2)[p], 6),
                qrank::TableWriter::FormatDouble(estimate->quality[p], 6)});
  }
  std::string report = dir + "/quality_report.csv";
  if (!csv.WriteCsvFile(report).ok()) return EXIT_FAILURE;
  std::printf("\nstage 3: wrote %s (%u rows)\n", report.c_str(), common);

  auto top_q = qrank::TopK(estimate->quality, 5);
  auto top_pr = qrank::TopK(series.pagerank(2), 5);
  std::printf("\ntop 5 by quality estimate: ");
  for (qrank::NodeId p : top_q) std::printf("%u ", p);
  std::printf("\ntop 5 by current PageRank: ");
  for (qrank::NodeId p : top_pr) std::printf("%u ", p);
  std::printf("\n");
  return EXIT_SUCCESS;
}
