// End-to-end compute -> serve pipeline: the full lifecycle a deployment
// runs, from crawl snapshots to answering ranked queries.
//
//   1. (Stand-in for a crawler) simulate an evolving web and take three
//      snapshots into a SnapshotSeries; compute per-snapshot PageRank.
//   2. Export a serving score bundle (core/bundle_export.h): quality
//      estimates Q̂ (Equation 1) paired with the latest PageRank, plus
//      the precomputed serving index, written as one QRKB file.
//   3. Load the file back zero-copy (mmap), publish it into a
//      SnapshotStore, and answer queries through QueryEngine: pure
//      quality, pure PageRank, a blend, a site-restricted query, and an
//      exploration query (Pandey-style randomized promotion).
//
// Usage:  ./build/examples/serve_pipeline [bundle_path]
// (default bundle path: /tmp/qrank_serve_example.qrkb)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "core/bundle_export.h"
#include "graph/site_graph.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"
#include "sim/web_simulator.h"

namespace {

void PrintResults(const char* label, const qrank::TopKScratch& scratch) {
  std::printf("%s\n", label);
  int rank = 1;
  for (const qrank::TopKEntry& e : scratch.results()) {
    std::printf("  %2d. page %-6u score %.6f%s\n", rank++, e.page_id,
                e.score, e.promoted ? "  (exploration)" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bundle_path =
      argc > 1 ? argv[1] : "/tmp/qrank_serve_example.qrkb";

  // --- Stage 1: crawl (simulated) into a snapshot series.
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 600;
  sim_options.seed = 7;
  sim_options.page_birth_rate = 15.0;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) return EXIT_FAILURE;

  qrank::SnapshotSeries series;
  for (double t : {12.0, 16.0, 20.0}) {
    if (!sim->AdvanceTo(t).ok()) return EXIT_FAILURE;
    auto graph = qrank::CsrGraph::FromEdgeList(sim->graph().EdgesAt(t));
    if (!graph.ok() ||
        !series.AddSnapshot(t, std::move(graph).value()).ok()) {
      return EXIT_FAILURE;
    }
  }
  qrank::PageRankOptions pr;
  pr.scale = qrank::ScaleConvention::kTotalMassN;  // paper's Section 8
  if (!series.ComputePageRanks(pr).ok()) return EXIT_FAILURE;
  std::printf("stage 1: %zu snapshots, %u common pages\n",
              series.num_snapshots(), series.CommonNodeCount());

  // --- Stage 2: export the serving bundle.
  qrank::BundleExportOptions export_options;
  const qrank::SiteId num_sites = 8;
  export_options.site_ids = qrank::RoundRobinSiteAssignment(
      series.CommonNodeCount(), num_sites);
  export_options.num_sites = num_sites;
  auto writer =
      qrank::ExportScoreBundle(series, series.num_snapshots(), export_options);
  if (!writer.ok()) {
    std::fprintf(stderr, "export failed: %s\n",
                 writer.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  if (!writer->WriteFile(bundle_path).ok()) return EXIT_FAILURE;
  std::printf("stage 2: wrote %s (%u pages, %u sites)\n",
              bundle_path.c_str(), writer->num_pages(), num_sites);

  // --- Stage 3: load (mmap), publish, query.
  auto bundle = qrank::LoadedBundle::Load(bundle_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 bundle.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::printf("stage 3: loaded via %s\n",
              bundle->backing() == qrank::LoadedBundle::Backing::kMmap
                  ? "mmap (zero-copy)"
                  : "heap (read fallback)");

  // Publish through the ordered path, stamped with the snapshot time it
  // reflects. A late or replayed publisher re-offering an older stamp
  // must be rejected, or a fresh generation would be silently clobbered
  // by stale scores — the ordering bug this example used to have.
  qrank::SnapshotStore store;
  auto published = store.PublishOrdered(
      std::make_shared<const qrank::LoadedBundle>(std::move(bundle).value()),
      /*sequence=*/20);
  if (!published.ok()) return EXIT_FAILURE;
  auto replay = qrank::LoadedBundle::Load(bundle_path);
  if (!replay.ok()) return EXIT_FAILURE;
  auto stale = store.PublishOrdered(
      std::make_shared<const qrank::LoadedBundle>(std::move(replay).value()),
      /*sequence=*/16);
  if (stale.ok()) {
    std::fprintf(stderr,
                 "BUG: stale publish (sequence 16 <= watermark 20) was "
                 "accepted\n");
    return EXIT_FAILURE;
  }
  std::printf(
      "stage 3: generation %llu published at sequence 20; stale replay "
      "rejected (%s)\n",
      static_cast<unsigned long long>(published.value()),
      stale.status().ToString().c_str());

  const qrank::QueryEngine engine(&store);
  qrank::TopKScratch scratch;

  qrank::TopKQuery q;
  q.k = 5;

  q.blend_alpha = 1.0;
  if (!engine.TopK(q, &scratch).ok()) return EXIT_FAILURE;
  PrintResults("\ntop 5 by quality estimate (alpha = 1):", scratch);

  q.blend_alpha = 0.0;
  if (!engine.TopK(q, &scratch).ok()) return EXIT_FAILURE;
  PrintResults("\ntop 5 by current PageRank (alpha = 0):", scratch);

  q.blend_alpha = 0.5;
  if (!engine.TopK(q, &scratch).ok()) return EXIT_FAILURE;
  PrintResults("\ntop 5 blended (alpha = 0.5):", scratch);

  q.site = 3;
  if (!engine.TopK(q, &scratch).ok()) return EXIT_FAILURE;
  PrintResults("\ntop 5 within site 3:", scratch);

  q.site = qrank::kAllSites;
  q.exploration_epsilon = 0.3;
  q.exploration_seed = 42;
  if (!engine.TopK(q, &scratch).ok()) return EXIT_FAILURE;
  PrintResults("\ntop 5 with exploration (epsilon = 0.3):", scratch);

  return EXIT_SUCCESS;
}
