// Quickstart: the complete qrank pipeline in one small program.
//
//  1. Simulate an evolving Web under the paper's user-visitation model.
//  2. Snapshot it four times (the Figure 4 timeline, scaled).
//  3. Compute PageRank per snapshot and estimate page quality with
//     Q(p) = C * dPR/PR + PR (Equation 1 of the paper).
//  4. Check which predicts the future PageRank better: the quality
//     estimate or the current PageRank (the Figure 5 experiment).
//
// Build & run:  ./build/examples/quickstart [--report out.md] [--seed N]

#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "core/experiment.h"
#include "core/experiment_report.h"

int main(int argc, char** argv) {
  qrank::FlagParser flags(argc, argv);
  // The defaults are calibrated to reproduce the paper's Section 8
  // shape; only the seed is pinned here.
  qrank::CrawlExperimentOptions options;
  options.simulator.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::string report_path = flags.GetString("report", "");
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  qrank::Result<qrank::CrawlExperimentResult> result =
      qrank::RunCrawlExperiment(options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  const qrank::CrawlExperimentResult& r = *result;
  std::printf("simulated web: %u common pages, %llu visits, %llu likes\n\n",
              r.common_pages,
              static_cast<unsigned long long>(r.total_visits),
              static_cast<unsigned long long>(r.total_likes));
  std::printf("trend classification: %llu rising, %llu falling, "
              "%llu oscillating, %llu stable\n\n",
              static_cast<unsigned long long>(r.estimate.num_rising),
              static_cast<unsigned long long>(r.estimate.num_falling),
              static_cast<unsigned long long>(r.estimate.num_oscillating),
              static_cast<unsigned long long>(r.estimate.num_stable));
  std::printf("%s\n", qrank::RenderComparison(r.comparison).c_str());
  std::printf("\nground truth (simulation only):\n"
              "  Spearman(quality estimate, true quality) = %.3f\n"
              "  Spearman(current PageRank, true quality) = %.3f\n"
              "  precision@%llu: quality estimate %.2f, PageRank %.2f\n",
              r.truth.spearman_quality_estimate,
              r.truth.spearman_current_pagerank,
              static_cast<unsigned long long>(r.truth.top_k),
              r.truth.precision_at_k_quality_estimate,
              r.truth.precision_at_k_current_pagerank);

  if (!report_path.empty()) {
    qrank::Status st = qrank::WriteExperimentReport(r, report_path);
    if (!st.ok()) {
      std::fprintf(stderr, "report failed: %s\n", st.ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("\nmarkdown report written to %s\n", report_path.c_str());
  }
  return EXIT_SUCCESS;
}
