// Traffic-based quality estimation (Section 9.1, future work): apply
// the paper's estimator to visit data instead of the link structure.
//
// By the popularity-equivalence hypothesis (Proposition 1), visit rate
// V(p,t) = r * P(p,t), so per-interval visit counts are a popularity
// surrogate. This example collects cumulative visit counters from the
// simulator at three instants (as a traffic-measurement company like
// the paper's NetRatings reference would), derives interval rates, runs
// the same Q = C * dP/P + P estimator, and compares the resulting
// ranking with the link-based estimate.
//
// Build & run:  ./build/examples/traffic_quality

#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "core/traffic_estimator.h"
#include "sim/web_simulator.h"

int main() {
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1000;
  sim_options.seed = 314;
  sim_options.visit_rate_factor = 2.0;
  sim_options.page_birth_rate = 25.0;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  // Collect both link snapshots and traffic counters at t = 16, 20, 24.
  qrank::SnapshotSeries series;
  std::vector<qrank::TrafficSnapshot> traffic;
  for (double t : {16.0, 20.0, 24.0}) {
    if (!sim->AdvanceTo(t).ok()) return EXIT_FAILURE;
    auto snapshot = sim->Snapshot();
    if (!snapshot.ok() ||
        !series.AddSnapshot(t, std::move(snapshot).value()).ok()) {
      return EXIT_FAILURE;
    }
    qrank::TrafficSnapshot ts;
    ts.time = t;
    for (qrank::NodeId p = 0; p < sim->num_pages(); ++p) {
      ts.cumulative_visits.push_back(sim->page(p).visits);
    }
    traffic.push_back(std::move(ts));
  }

  // Link-based estimate (the paper's main method).
  qrank::PageRankOptions pr_options;
  pr_options.scale = qrank::ScaleConvention::kTotalMassN;
  if (!series.ComputePageRanks(pr_options).ok()) return EXIT_FAILURE;
  auto link_estimate = qrank::EstimateQuality(series, 3);
  if (!link_estimate.ok()) return EXIT_FAILURE;

  // Traffic-based estimate (Section 9.1) over the same common pages.
  const qrank::NodeId common = series.CommonNodeCount();
  for (auto& ts : traffic) ts.cumulative_visits.resize(common);
  qrank::TrafficEstimatorOptions traffic_options;
  traffic_options.visit_rate_normalization =
      sim_options.visit_rate_factor * sim_options.num_users;
  auto traffic_estimate =
      qrank::EstimateQualityFromTraffic(traffic, traffic_options);
  if (!traffic_estimate.ok()) {
    std::fprintf(stderr, "%s\n",
                 traffic_estimate.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  // How similar are the two rankings, and how do they relate to truth?
  std::vector<double> truth(common);
  for (qrank::NodeId p = 0; p < common; ++p) {
    truth[p] = sim->TrueQuality(p);
  }
  auto agreement = qrank::SpearmanCorrelation(link_estimate->quality,
                                              traffic_estimate->quality);
  auto link_truth = qrank::SpearmanCorrelation(link_estimate->quality, truth);
  auto traffic_truth =
      qrank::SpearmanCorrelation(traffic_estimate->quality, truth);
  if (!agreement.ok() || !link_truth.ok() || !traffic_truth.ok()) {
    return EXIT_FAILURE;
  }

  std::printf("pages: %u common across 3 snapshots\n\n", common);
  std::printf("Spearman(link-based Q, traffic-based Q)   = %.3f\n",
              agreement.value());
  std::printf("Spearman(link-based Q, true quality)      = %.3f\n",
              link_truth.value());
  std::printf("Spearman(traffic-based Q, true quality)   = %.3f\n",
              traffic_truth.value());
  std::printf(
      "\nBoth estimators rank pages consistently (Proposition 1 ties\n"
      "visits to popularity); the traffic variant is noisier because\n"
      "interval visit counts are a sampled, not structural, signal —\n"
      "the comparison the paper proposes as future work.\n");
  return EXIT_SUCCESS;
}
