// Site-level and structural analysis of a simulated Web — the paper's
// data-gathering perspective (its corpus was 154 *sites*), plus the
// link-structure measurements of the related work it builds on:
// power-law degrees [3, 6], the bow-tie decomposition [6], small-world
// diameter [3], and the effect of a budgeted crawl on what a study sees.
//
// Build & run:  ./build/examples/site_analysis

#include <cstdio>
#include <cstdlib>

#include "graph/analysis.h"
#include "graph/site_graph.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"
#include "sim/crawler.h"
#include "sim/web_simulator.h"

int main() {
  // Simulate a web and snapshot it.
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1500;
  sim_options.seed = 154;  // the paper's site count, as a nod
  sim_options.page_birth_rate = 40.0;
  sim_options.visit_rate_factor = 2.0;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  if (!sim->AdvanceTo(20.0).ok()) return EXIT_FAILURE;
  auto snapshot = sim->Snapshot();
  if (!snapshot.ok()) return EXIT_FAILURE;
  const qrank::CsrGraph& web = *snapshot;

  std::printf("=== Page-level structure ===\n");
  std::printf("pages: %u, links: %zu, avg degree: %.2f, reciprocity: "
              "%.3f, dangling: %zu\n",
              web.num_nodes(), web.num_edges(), qrank::AverageDegree(web),
              qrank::Reciprocity(web), web.CountDanglingNodes());

  auto fit = qrank::FitDegreePowerLaw(qrank::InDegreeDistribution(web));
  if (fit.ok()) {
    std::printf("in-degree power law: exponent %.2f (R^2 %.2f) — the "
                "paper cites [3, 6] for Web degree power laws\n",
                fit->exponent, fit->r_squared);
  }
  auto diameter = qrank::EstimateDiameter(web, 20, 99);
  if (diameter.ok()) {
    std::printf("effective diameter: %u hops (mean distance %.2f over "
                "%llu sampled pairs) — the small world of [3]\n",
                diameter->effective_diameter, diameter->mean_distance,
                static_cast<unsigned long long>(diameter->pairs_sampled));
  }
  qrank::BowTieResult bow_tie = qrank::ComputeBowTie(web);
  std::printf("bow tie [6]: core %llu, in %llu, out %llu, tendrils %llu, "
              "disconnected %llu\n\n",
              static_cast<unsigned long long>(bow_tie.core_size),
              static_cast<unsigned long long>(bow_tie.in_size),
              static_cast<unsigned long long>(bow_tie.out_size),
              static_cast<unsigned long long>(bow_tie.tendrils_size),
              static_cast<unsigned long long>(bow_tie.disconnected_size));

  // Site-level view: group pages into 154 synthetic sites.
  std::printf("=== Site-level view (154 sites, like the paper's corpus) "
              "===\n");
  std::vector<qrank::SiteId> site_of =
      qrank::RoundRobinSiteAssignment(web.num_nodes(), 154);
  auto site_graph = qrank::BuildSiteGraph(web, site_of, 154);
  if (!site_graph.ok()) return EXIT_FAILURE;
  std::printf("site quotient: %u sites, %zu cross-site edges (%llu "
              "cross-site page links, %llu intra-site)\n",
              site_graph->graph.num_nodes(), site_graph->graph.num_edges(),
              static_cast<unsigned long long>(site_graph->cross_site_links),
              static_cast<unsigned long long>(site_graph->intra_site_links));

  auto page_pr = qrank::ComputePageRank(web);
  if (!page_pr.ok()) return EXIT_FAILURE;
  auto site_mass =
      qrank::AggregateScoresBySite(page_pr->scores, site_of, 154);
  if (!site_mass.ok()) return EXIT_FAILURE;
  auto top_sites = qrank::TopK(*site_mass, 5);
  std::printf("top sites by aggregated page PageRank:");
  for (qrank::SiteId s : top_sites) std::printf(" %u", s);
  std::printf("\n\n");

  // What a budgeted crawl of this web would see.
  std::printf("=== Budgeted crawl (the paper's 200k-page cap, scaled) "
              "===\n");
  std::vector<qrank::NodeId> seeds;
  for (qrank::NodeId p = 0; p < 20; ++p) seeds.push_back(p);
  for (uint64_t budget : {200ull, 600ull, 0ull}) {
    qrank::CrawlerOptions crawl_options;
    crawl_options.page_budget = budget;
    auto crawl = qrank::Crawl(web, seeds, crawl_options);
    if (!crawl.ok()) return EXIT_FAILURE;
    std::printf("budget %5llu: crawled %llu pages (%.0f%% of the web), "
                "%llu links observed%s\n",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(crawl->pages_crawled),
                100.0 * static_cast<double>(crawl->pages_crawled) /
                    static_cast<double>(web.num_nodes()),
                static_cast<unsigned long long>(crawl->links_observed),
                crawl->budget_exhausted ? " [budget exhausted]" : "");
  }
  return EXIT_SUCCESS;
}
