// Survey of every ranking engine in qrank on one synthetic Web graph:
// PageRank (power iteration, Gauss-Seidel, adaptive, extrapolated),
// OPIC online importance, HITS authorities, TrafficRank, in-degree —
// and how each correlates with the latent quality that generated the
// links.
//
// Build & run:  ./build/examples/ranking_engines

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table_writer.h"
#include "graph/generators.h"
#include "rank/adaptive_pagerank.h"
#include "rank/baselines.h"
#include "rank/extrapolation.h"
#include "rank/hits.h"
#include "rank/opic.h"
#include "rank/pagerank.h"
#include "rank/rank_vector.h"
#include "rank/topic_sensitive.h"
#include "rank/traffic_rank.h"

int main() {
  // A quality-seeded graph: links attach preferentially to high-quality
  // pages, so "quality recovery" is measurable for every metric.
  qrank::Rng rng(2718);
  qrank::Result<qrank::QualitySeededGraph> seeded =
      qrank::GenerateQualitySeeded(/*num_nodes=*/1200, /*out_degree=*/4,
                                   /*quality_alpha=*/1.2,
                                   /*quality_beta=*/2.5,
                                   /*quality_strength=*/2.0, &rng);
  if (!seeded.ok()) {
    std::fprintf(stderr, "%s\n", seeded.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  qrank::Result<qrank::CsrGraph> graph =
      qrank::CsrGraph::FromEdgeList(seeded->edges);
  if (!graph.ok()) return EXIT_FAILURE;
  const qrank::CsrGraph& g = *graph;
  const std::vector<double>& quality = seeded->quality;

  std::printf("graph: %u pages, %zu links, %zu dangling\n\n", g.num_nodes(),
              g.num_edges(), g.CountDanglingNodes());

  qrank::TableWriter table(
      {"engine", "iterations", "Spearman vs quality", "top page"});
  auto report = [&](const char* name, const std::vector<double>& scores,
                    uint32_t iterations) {
    auto rho = qrank::SpearmanCorrelation(scores, quality);
    table.AddRow({name, std::to_string(iterations),
                  rho.ok() ? qrank::TableWriter::FormatDouble(rho.value(), 3)
                           : std::string("n/a"),
                  std::to_string(qrank::TopK(scores, 1)[0])});
  };

  qrank::PageRankOptions pr_options;
  auto power = qrank::ComputePageRank(g, pr_options);
  auto gs = qrank::ComputePageRankGaussSeidel(g, pr_options);
  qrank::AdaptivePageRankOptions ad_options;
  auto adaptive = qrank::ComputeAdaptivePageRank(g, ad_options);
  qrank::ExtrapolatedPageRankOptions ex_options;
  auto extrapolated = qrank::ComputeExtrapolatedPageRank(g, ex_options);
  auto hits = qrank::ComputeHits(g);
  auto traffic = qrank::ComputeTrafficRank(g);
  if (!power.ok() || !gs.ok() || !adaptive.ok() || !extrapolated.ok() ||
      !hits.ok() || !traffic.ok()) {
    std::fprintf(stderr, "an engine failed\n");
    return EXIT_FAILURE;
  }
  auto opic = qrank::OpicComputer::Create(&g);
  if (!opic.ok()) return EXIT_FAILURE;
  opic->RunSweeps(50);

  report("PageRank (power)", power->scores, power->iterations);
  report("PageRank (Gauss-Seidel)", gs->scores, gs->iterations);
  report("PageRank (adaptive)", adaptive->base.scores,
         adaptive->base.iterations);
  report("PageRank (extrapolated)", extrapolated->base.scores,
         extrapolated->base.iterations);
  report("OPIC (50 sweeps)", opic->Importance(), 50);
  report("HITS authority", hits->authority, hits->iterations);
  report("TrafficRank", traffic->scores, traffic->iterations);
  report("in-degree", qrank::InDegreeScores(g), 0);
  table.RenderAscii(std::cout);

  // Topic-sensitive PageRank: bias toward the top-quality decile as a
  // "topic" and show the blend shifting the ranking.
  std::vector<qrank::NodeId> elite =
      qrank::TopK(quality, quality.size() / 10);
  qrank::TopicSpec topic{"elite", elite};
  qrank::TopicSpec everything{"all", {}};
  for (qrank::NodeId p = 0; p < g.num_nodes(); ++p) {
    everything.seed_pages.push_back(p);
  }
  auto tspr = qrank::TopicSensitivePageRank::Create(g, {topic, everything});
  if (!tspr.ok()) return EXIT_FAILURE;
  auto blended = tspr->Blend({0.7, 0.3});
  if (!blended.ok()) return EXIT_FAILURE;
  auto rho_blend = qrank::SpearmanCorrelation(*blended, quality);
  std::printf(
      "\ntopic-sensitive PageRank (70%% weight on the top-quality decile "
      "topic): Spearman vs quality %.3f (uniform PageRank: %.3f)\n",
      rho_blend.ok() ? rho_blend.value() : 0.0,
      qrank::SpearmanCorrelation(power->scores, quality).value());
  return EXIT_SUCCESS;
}
