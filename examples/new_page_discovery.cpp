// The "rich-get-richer" scenario from the paper's introduction: a brand
// new, very high-quality page enters an established Web. Current
// PageRank buries it ("even if a page is of high quality, the page may
// be completely ignored by Web users simply because its current
// popularity is very low"); the quality estimator surfaces it early.
//
// This example injects a Q = 0.95 page into a mature simulated Web,
// takes three snapshots shortly after its birth, and prints the page's
// rank position under (a) current PageRank and (b) the paper's quality
// estimator, as the page ages.
//
// Build & run:  ./build/examples/new_page_discovery

#include <cstdio>
#include <cstdlib>

#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "rank/rank_vector.h"
#include "sim/web_simulator.h"

namespace {

// Ranks `page` within `scores` (0 = best).
uint32_t RankOf(const std::vector<double>& scores, qrank::NodeId page) {
  return qrank::DenseRanks(scores)[page];
}

}  // namespace

int main() {
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1200;
  sim_options.seed = 99;
  sim_options.visit_rate_factor = 2.0;

  qrank::Result<qrank::WebSimulator> sim_result =
      qrank::WebSimulator::Create(sim_options);
  if (!sim_result.ok()) {
    std::fprintf(stderr, "%s\n", sim_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  qrank::WebSimulator& sim = *sim_result;

  // Let the incumbent Web mature, then inject the newcomer.
  if (!sim.AdvanceTo(10.0).ok()) return EXIT_FAILURE;
  qrank::Result<qrank::NodeId> newcomer = sim.AddPageWithQuality(0.95);
  if (!newcomer.ok()) return EXIT_FAILURE;
  const qrank::NodeId page = newcomer.value();
  std::printf("injected newcomer page %u with true quality 0.95 at t=10 "
              "into a web of %u mature pages\n\n",
              page, sim.num_pages() - 1);

  std::printf("%-8s %-14s %-18s %-22s %s\n", "age", "popularity",
              "PageRank rank", "quality-est. rank", "true-quality rank: 1");
  // Observe at increasing ages; at each age estimate quality from three
  // snapshots spanning the preceding window.
  for (double age : {2.0, 4.0, 6.0, 8.0, 12.0}) {
    double t3 = 10.0 + age;
    double gap = age / 2.0;
    qrank::SnapshotSeries series;
    // Re-simulate deterministically? No — we advance the same world and
    // snapshot the dynamic graph at past instants (the DynamicGraph
    // retains full history).
    if (!sim.AdvanceTo(t3).ok()) return EXIT_FAILURE;
    for (double t : {t3 - 2.0 * gap, t3 - gap, t3}) {
      auto snapshot = sim.graph().SnapshotAt(t);
      if (!snapshot.ok() ||
          !series.AddSnapshot(t, std::move(snapshot).value()).ok()) {
        return EXIT_FAILURE;
      }
    }
    qrank::PageRankOptions pr_options;
    pr_options.scale = qrank::ScaleConvention::kTotalMassN;
    if (!series.ComputePageRanks(pr_options).ok()) return EXIT_FAILURE;

    auto estimate = qrank::EstimateQuality(series, 3);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimate failed: %s\n",
                   estimate.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    const std::vector<double>& pr = series.pagerank(2);
    uint32_t pr_rank = RankOf(pr, page) + 1;
    uint32_t q_rank = RankOf(estimate->quality, page) + 1;
    std::printf("%-8.0f %-14.4f #%-17u #%-21u\n", age,
                sim.TruePopularity(page), pr_rank, q_rank);
  }

  std::printf(
      "\nThe quality estimator promotes the high-quality newcomer many\n"
      "positions earlier than raw PageRank, mitigating the\n"
      "rich-get-richer bias described in Sections 1 and 4 of the paper.\n");
  return EXIT_SUCCESS;
}
