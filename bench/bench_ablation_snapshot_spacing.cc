// Ablation over snapshot spacing (Section 9.1, "Statistical Noise"):
// the paper suggests computing the PageRank increase over a longer
// period for low-PageRank pages to reduce the impact of noise. This
// bench varies the observation gap G (t1, t1+G, t1+2G) at a fixed future
// horizon and reports the estimator's accuracy, demonstrating the
// noise/recency trade-off the paper anticipates: very short windows are
// noisy, very long windows blur the trend.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "core/experiment.h"

int main() {
  std::printf("=== Ablation: observation-window spacing ===\n");
  std::printf("snapshots at {t3 - 2G, t3 - G, t3=24, t4=32}; estimator "
              "C=0.1 throughout\n\n");

  qrank::TableWriter table({"gap G", "pages eval", "mean err Q(p)",
                            "mean err PR(t3)", "improvement"});
  std::vector<double> errs;
  for (double gap : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    qrank::CrawlExperimentOptions options;
    options.simulator.seed = 99;
    options.snapshot_times = {24.0 - 2.0 * gap, 24.0 - gap, 24.0, 32.0};
    qrank::Result<qrank::CrawlExperimentResult> result =
        qrank::RunCrawlExperiment(options);
    if (!result.ok()) {
      std::fprintf(stderr, "G=%.1f failed: %s\n", gap,
                   result.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    const auto& cmp = result->comparison;
    table.AddNumericRow({gap, static_cast<double>(cmp.pages_evaluated),
                         cmp.quality.mean_error, cmp.pagerank.mean_error,
                         cmp.improvement_factor},
                        4);
    errs.push_back(cmp.quality.mean_error);
  }
  table.RenderAscii(std::cout);
  std::printf("\nNote: short windows admit Poisson noise into dPR "
              "(Section 9.1); the window also controls how many pages "
              "clear the 5%%-change filter.\n");
  return EXIT_SUCCESS;
}
