// Numeric verification of Theorem 2 across the model's parameter space,
// plus the practical-approximation ablation: how fast the
// finite-difference estimator (two snapshots, as a real system measures)
// converges to Q as the snapshot gap shrinks.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "model/visitation_model.h"

int main() {
  std::printf("=== Theorem 2: Q == I(p,t) + P(p,t), exact sweep ===\n");
  double max_dev = 0.0;
  size_t combos = 0;
  for (double q : {0.05, 0.2, 0.5, 0.8, 1.0}) {
    for (double rn : {0.1, 1.0, 10.0}) {
      for (double p0_frac : {1e-6, 1e-3, 0.5}) {
        qrank::VisitationParams params;
        params.quality = q;
        params.num_users = 1e7;
        params.visit_rate = rn * 1e7;
        params.initial_popularity = p0_frac * q;
        auto model = qrank::VisitationModel::Create(params);
        if (!model.ok()) continue;
        ++combos;
        for (double t = 0.0; t <= 200.0; t += 1.0) {
          max_dev =
              std::max(max_dev, std::fabs(model->EstimatorSum(t) - q));
        }
      }
    }
  }
  std::printf("parameter combinations: %zu; max |I+P-Q| = %.3e\n\n", combos,
              max_dev);

  std::printf("=== Practical approximation: finite-difference estimator ===\n");
  std::printf("page mid-expansion (Q=0.5, t1 at 20%% awareness); estimate "
              "from two snapshots Delta t apart\n\n");
  qrank::VisitationParams params;
  params.quality = 0.5;
  params.num_users = 1e6;
  params.visit_rate = 1e6;
  params.initial_popularity = 1e-4;
  auto model = qrank::VisitationModel::Create(params).value();
  double t1 = model.TimeToReachFraction(0.2).value();

  qrank::TableWriter table({"snapshot gap", "estimate", "abs error"});
  for (double gap : {8.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.125}) {
    double est = model.FiniteDifferenceEstimate(t1, t1 + gap).value();
    table.AddNumericRow({gap, est, std::fabs(est - 0.5)}, 6);
  }
  table.RenderAscii(std::cout);
  std::printf("\nthe two-snapshot estimator converges to Q as the gap "
              "shrinks (first-order in the gap)\n");
  return max_dev < 1e-9 ? EXIT_SUCCESS : EXIT_FAILURE;
}
