// Validation of the substrate substitution (DESIGN.md section 2): the
// simulator must BE the paper's model at population scale. This bench
// runs the agent-level simulator and the closed-form population model
// on the same parameters and compares aggregates: mean popularity by
// cohort age and the mature fraction.
//
// Expected relationship: agreement at both ends (infancy and
// saturation) with a bounded *stochastic delay* mid-expansion — with
// only `seed_likers` initial fans, a page's early growth is a branching
// process whose random timing delays the population mean behind the
// mean-field logistic. The delay shrinks as the seed size grows, which
// this bench verifies: it is sampling noise, not different dynamics.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "model/population_model.h"
#include "sim/web_simulator.h"

namespace {

constexpr uint32_t kUsers = 2000;
constexpr double kQualityAlpha = 1.3, kQualityBeta = 3.0;

// Worst relative difference in mean popularity over the age grid, and
// the end-of-run difference.
struct Agreement {
  double worst = 0.0;
  double at_end = 0.0;
};

qrank::Result<Agreement> Measure(uint32_t seed_likers, bool print_table) {
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = kUsers;
  sim_options.seed = 42;
  sim_options.seed_likers = seed_likers;
  sim_options.quality_alpha = kQualityAlpha;
  sim_options.quality_beta = kQualityBeta;
  QRANK_ASSIGN_OR_RETURN(qrank::WebSimulator sim,
                         qrank::WebSimulator::Create(sim_options));

  qrank::PopulationParams model_params;
  model_params.quality_alpha = kQualityAlpha;
  model_params.quality_beta = kQualityBeta;
  model_params.num_users = kUsers;
  model_params.visit_rate = kUsers;  // factor 1
  model_params.initial_popularity =
      static_cast<double>(seed_likers) / kUsers;
  QRANK_ASSIGN_OR_RETURN(qrank::PopulationModel model,
                         qrank::PopulationModel::Create(model_params));

  qrank::TableWriter table({"age", "mean P (sim)", "mean P (model)",
                            "rel diff %", "mature frac (sim)",
                            "mature frac (model)"});
  Agreement agreement;
  for (double age : {2.0, 6.0, 10.0, 14.0, 18.0, 24.0, 32.0}) {
    QRANK_RETURN_NOT_OK(sim.AdvanceTo(age));
    double sum_p = 0.0;
    uint64_t mature = 0;
    const qrank::NodeId pages = sim.num_pages();
    for (qrank::NodeId p = 0; p < pages; ++p) {
      sum_p += sim.TruePopularity(p);
      if (sim.TrueAwareness(p) > 0.9) ++mature;
    }
    double sim_mean = sum_p / static_cast<double>(pages);
    double model_mean = model.ExpectedPopularityAtAge(age);
    double rel = std::fabs(sim_mean - model_mean) /
                 std::max(model_mean, 1e-12);
    agreement.worst = std::max(agreement.worst, rel);
    agreement.at_end = rel;
    qrank::StageMix mix = model.StageMixAtAge(age);
    table.AddNumericRow(
        {age, sim_mean, model_mean, rel * 100.0,
         static_cast<double>(mature) / static_cast<double>(pages),
         mix.maturity},
        4);
  }
  if (print_table) table.RenderAscii(std::cout);
  return agreement;
}

}  // namespace

int main() {
  std::printf("=== Simulator vs closed-form population model ===\n");
  std::printf("%u users/pages, quality ~ Beta(%.1f, %.1f)\n\n", kUsers,
              kQualityAlpha, kQualityBeta);

  std::printf("--- seed_likers = 1 (maximal early stochasticity)\n");
  auto seed1 = Measure(1, /*print_table=*/true);
  if (!seed1.ok()) return EXIT_FAILURE;
  std::printf("\n--- seed_likers = 8 (early branching averaged out)\n");
  auto seed8 = Measure(8, /*print_table=*/true);
  if (!seed8.ok()) return EXIT_FAILURE;

  std::printf(
      "\nworst relative deviation: %.1f%% (seed 1) vs %.1f%% (seed 8); "
      "end-of-run deviation: %.1f%% vs %.1f%%\n",
      seed1->worst * 100.0, seed8->worst * 100.0, seed1->at_end * 100.0,
      seed8->at_end * 100.0);

  // The substitution claims: (a) the simulator converges to the model's
  // saturation state, and (b) the mid-expansion gap is branching-noise
  // that shrinks with the seed size.
  bool converges = seed1->at_end < 0.10 && seed8->at_end < 0.10;
  bool noise_shrinks = seed8->worst < seed1->worst;
  bool bounded = seed1->worst < 0.40;
  if (converges && noise_shrinks && bounded) {
    std::printf("PASS: simulator implements the model's dynamics; the "
                "mid-expansion gap is early-branching timing noise "
                "(shrinks with seed size), not different dynamics\n");
    return EXIT_SUCCESS;
  }
  std::printf("FAIL: simulator diverges from the analytic model\n");
  return EXIT_FAILURE;
}
