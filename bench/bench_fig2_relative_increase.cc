// Regenerates Figure 2 of the paper: time evolution of the relative
// popularity increase I(p,t) and the popularity P(p,t) for Q = 0.2,
// n = r = 1e8, P(p,0) = 1e-9.
//
// Expected shape: I(p,t) ~ Q for small t (good early estimator) and
// decays once awareness saturates; P(p,t) ~ 0 early (poor estimator)
// and ~ Q late. The two curves cross mid-expansion.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "model/visitation_model.h"

int main() {
  qrank::VisitationParams params;
  params.quality = 0.2;
  params.num_users = 1e8;
  params.visit_rate = 1e8;
  params.initial_popularity = 1e-9;
  qrank::Result<qrank::VisitationModel> model =
      qrank::VisitationModel::Create(params);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf("=== Figure 2: I(p,t) and P(p,t) over time ===\n");
  std::printf("parameters: Q=0.2  n=1e8  r=1e8  P(p,0)=1e-9\n\n");

  qrank::TableWriter table({"t", "I(p,t)", "P(p,t)"});
  for (double t = 0.0; t <= 150.0; t += 10.0) {
    table.AddNumericRow({t, model->RelativeIncrease(t), model->Popularity(t)},
                        6);
  }
  table.RenderAscii(std::cout);

  std::printf("\nearly regime (t=10):  I=%.4f ~ Q=0.2, P=%.6f (poor)\n",
              model->RelativeIncrease(10.0), model->Popularity(10.0));
  std::printf("late regime (t=150): I=%.4f (decayed), P=%.4f ~ Q=0.2\n",
              model->RelativeIncrease(150.0), model->Popularity(150.0));
  return EXIT_SUCCESS;
}
