// Serving-layer benchmarks (google-benchmark): QueryEngine::TopK QPS
// and latency over a score bundle built from the 131k-page site graph
// (655 sites x 200 pages, the same shape the reorder suite uses).
//
// The bundle carries a real PageRank vector of that graph (mass-n
// convention) and a quality vector derived from it the way the
// estimator would (PR scaled by a per-page relative-increase factor),
// so the score distributions — and therefore the threshold algorithm's
// stopping depth — are the ones the serving layer actually sees.
//
// Suites:
//   BM_BundleLoad          image -> validated LoadedBundle (pages/s)
//   BM_TopK/alpha:*        single-thread QPS per blend mode
//   BM_TopKSite/*          per-site filtered queries (site rotates)
//   BM_TopKExplore         Pandey exploration mix enabled
//   BM_TopKThreads/*       concurrent readers on one shared store
//   BM_TopKHotSwap         reader QPS + sampled p50/p99 latency while
//                          a background publisher churns generations
//   BM_Publish             hot-swap publish cost itself
//
// With --check_serve_regression the process exits non-zero when the
// single-thread pure-quality QPS falls under the CI floor (a
// conservative fraction of the >= 1M/s this suite shows on dedicated
// hardware) or the hot-swap churn rows are missing/zero — the Release
// bench job's smoke gate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "rank/pagerank.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace {

using qrank::CsrGraph;
using qrank::kAllSites;
using qrank::LoadedBundle;
using qrank::NodeId;
using qrank::QueryEngine;
using qrank::ScoreBundleSource;
using qrank::ScoreBundleWriter;
using qrank::SiteId;
using qrank::SnapshotStore;
using qrank::TopKQuery;
using qrank::TopKScratch;

constexpr NodeId kNumSites = 655;
constexpr NodeId kPagesPerSite = 200;  // 131k pages total

// PageRank of the site-clustered graph plus an estimator-shaped quality
// vector; `seed` varies the quality factors so churned generations
// differ.
ScoreBundleSource MakeSource(uint64_t seed) {
  static const std::vector<double>* pagerank = [] {
    qrank::Rng rng(99);
    const CsrGraph g =
        CsrGraph::FromEdgeList(
            qrank::GenerateSiteClustered(kNumSites, kPagesPerSite, 12, 6,
                                         &rng)
                .value())
            .value();
    qrank::PageRankOptions o;
    o.max_iterations = 30;
    o.scale = qrank::ScaleConvention::kTotalMassN;
    return new std::vector<double>(
        qrank::ComputePageRank(g, o).value().scores);
  }();
  ScoreBundleSource src;
  src.pagerank = *pagerank;
  const NodeId n = static_cast<NodeId>(src.pagerank.size());
  src.quality.resize(n);
  src.site_ids.resize(n);
  qrank::Rng rng(seed);
  for (NodeId i = 0; i < n; ++i) {
    // Q = C*I + PR with a random relative increase I/PR in [-0.5, 2].
    src.quality[i] = src.pagerank[i] * (1.0 + rng.UniformDouble(-0.5, 2.0));
    src.site_ids[i] = i / kPagesPerSite;
  }
  src.num_sites = kNumSites;
  src.creator_tag = static_cast<uint32_t>(seed);
  return src;
}

std::vector<uint8_t> MakeImage(uint64_t seed) {
  return ScoreBundleWriter::Create(MakeSource(seed)).value().Serialize();
}

const LoadedBundle& Bundle() {
  static const LoadedBundle b =
      LoadedBundle::FromBuffer(MakeImage(7)).value();
  return b;
}

TopKQuery BlendQuery(int alpha_pct, uint32_t k) {
  TopKQuery q;
  q.k = k;
  q.blend_alpha = alpha_pct / 100.0;
  return q;
}

void ReportQps(benchmark::State& state) {
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_BundleLoad(benchmark::State& state) {
  const std::vector<uint8_t> image = MakeImage(7);
  for (auto _ : state) {
    std::vector<uint8_t> copy = image;  // FromBuffer adopts its argument
    auto bundle = LoadedBundle::FromBuffer(std::move(copy));
    benchmark::DoNotOptimize(bundle.value().num_pages());
  }
  state.counters["pages/s"] = benchmark::Counter(
      static_cast<double>(Bundle().num_pages()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_TopK(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  const TopKQuery q = BlendQuery(static_cast<int>(state.range(0)),
                                 static_cast<uint32_t>(state.range(1)));
  TopKScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
    benchmark::DoNotOptimize(scratch.results().data());
  }
  ReportQps(state);
}

void BM_TopKSite(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  TopKQuery q = BlendQuery(static_cast<int>(state.range(0)), 10);
  TopKScratch scratch;
  SiteId site = 0;
  for (auto _ : state) {
    q.site = site;
    if (++site == kNumSites) site = 0;
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
  }
  ReportQps(state);
}

void BM_TopKExplore(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  TopKQuery q = BlendQuery(100, 10);
  q.exploration_epsilon = state.range(0) / 100.0;
  TopKScratch scratch;
  uint64_t seed = 0;
  for (auto _ : state) {
    q.exploration_seed = seed++;
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
  }
  ReportQps(state);
}

// Concurrent readers against one shared store (google-benchmark spawns
// state.threads() workers; per-thread counters are summed, so "qps" is
// the machine total).
void BM_TopKThreads(benchmark::State& state) {
  static SnapshotStore* store = [] {
    auto* s = new SnapshotStore();
    s->Publish(LoadedBundle::FromBuffer(MakeImage(7)).value());
    return s;
  }();
  const QueryEngine engine(store);
  const TopKQuery q = BlendQuery(static_cast<int>(state.range(0)), 10);
  TopKScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.TopK(q, &scratch).ok());
  }
  ReportQps(state);
}

// One reader thread measuring per-query latency while a publisher
// churns fresh generations from a second image every ~50 us — the
// hot-swap contract under load. p50/p99 are over every query in the
// timed region.
void BM_TopKHotSwap(benchmark::State& state) {
  SnapshotStore store;
  store.Publish(LoadedBundle::FromBuffer(MakeImage(7)).value());
  const QueryEngine engine(&store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> publishes{0};
  std::thread publisher([&] {
    // Alternate two premade generations; make_shared per publish keeps
    // the reclamation path (last unpin frees) in play.
    const std::vector<uint8_t> images[2] = {MakeImage(8), MakeImage(9)};
    int which = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<uint8_t> copy = images[which ^= 1];
      store.Publish(LoadedBundle::FromBuffer(std::move(copy)).value());
      publishes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  const TopKQuery q = BlendQuery(50, 10);
  TopKScratch scratch;
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 20);
  using Clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(engine.TopK(q, &scratch).ok());
    if (lat_ns.size() < lat_ns.capacity()) {
      lat_ns.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();

  std::sort(lat_ns.begin(), lat_ns.end());
  const auto pct = [&lat_ns](double p) {
    return lat_ns.empty()
               ? 0.0
               : lat_ns[static_cast<size_t>(p * (lat_ns.size() - 1))];
  };
  ReportQps(state);
  state.counters["p50_ns"] = benchmark::Counter(pct(0.50));
  state.counters["p99_ns"] = benchmark::Counter(pct(0.99));
  state.counters["publishes"] =
      benchmark::Counter(static_cast<double>(publishes.load()));
}

void BM_Publish(benchmark::State& state) {
  SnapshotStore store;
  const auto a = std::make_shared<const LoadedBundle>(
      LoadedBundle::FromBuffer(MakeImage(8)).value());
  const auto b = std::make_shared<const LoadedBundle>(
      LoadedBundle::FromBuffer(MakeImage(9)).value());
  bool which = false;
  for (auto _ : state) {
    store.Publish((which = !which) ? a : b);
  }
  state.counters["publishes/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void RegisterAll() {
  const auto us = [](benchmark::internal::Benchmark* b) {
    b->Unit(benchmark::kMicrosecond)->UseRealTime();
  };
  us(benchmark::RegisterBenchmark("BM_BundleLoad", BM_BundleLoad));
  for (int alpha : {100, 50, 0}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopK/alpha:" + std::to_string(alpha) + "/k:10").c_str(),
           BM_TopK)
           ->Args({alpha, 10}));
  }
  us(benchmark::RegisterBenchmark("BM_TopK/alpha:50/k:100", BM_TopK)
         ->Args({50, 100}));
  for (int alpha : {100, 50}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopKSite/alpha:" + std::to_string(alpha)).c_str(),
           BM_TopKSite)
           ->Arg(alpha));
  }
  us(benchmark::RegisterBenchmark("BM_TopKExplore/eps:10", BM_TopKExplore)
         ->Arg(10));
  for (int threads : {1, 2, 4}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopKThreads/alpha:100/threads:" + std::to_string(threads))
               .c_str(),
           BM_TopKThreads)
           ->Arg(100)
           ->Threads(threads));
  }
  us(benchmark::RegisterBenchmark("BM_TopKHotSwap/alpha:50", BM_TopKHotSwap));
  us(benchmark::RegisterBenchmark("BM_Publish", BM_Publish));
}

// CI smoke gate. The dedicated-hardware numbers are >= 1M qps for the
// pure-quality path; shared CI runners get a conservative floor so the
// gate catches order-of-magnitude regressions (an accidental per-query
// allocation or scan) without flaking on machine noise.
int CheckServeRegression(const std::vector<qrank_bench::BenchRow>& rows) {
  constexpr double kMinPureQps = 2e5;
  const auto find = [&rows](const std::string& name) -> const qrank_bench::BenchRow* {
    for (const qrank_bench::BenchRow& r : rows) {
      if (r.name.rfind(name, 0) == 0) return &r;
    }
    return nullptr;
  };
  const qrank_bench::BenchRow* pure = find("BM_TopK/alpha:100/k:10");
  if (pure == nullptr || pure->Counter("qps") < kMinPureQps) {
    std::fprintf(stderr,
                 "serve gate FAILED: BM_TopK/alpha:100/k:10 %s (floor %.3g "
                 "qps)\n",
                 pure == nullptr ? "missing" : "below floor", kMinPureQps);
    return 1;
  }
  const qrank_bench::BenchRow* churn = find("BM_TopKHotSwap");
  if (churn == nullptr || churn->Counter("qps") <= 0.0 ||
      churn->Counter("publishes") <= 0.0) {
    std::fprintf(stderr,
                 "serve gate FAILED: hot-swap churn row missing or idle\n");
    return 1;
  }
  std::printf("serve gate: pure-quality %.4g qps, churn %.4g qps over %g "
              "publishes (p99 %.4g ns)\n",
              pure->Counter("qps"), churn->Counter("qps"),
              churn->Counter("publishes"), churn->Counter("p99_ns"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_gate = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--check_serve_regression") {
      check_gate = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  RegisterAll();
  std::function<int(const std::vector<qrank_bench::BenchRow>&)> after;
  if (check_gate) after = CheckServeRegression;
  return qrank_bench::BenchMain(static_cast<int>(args.size()), args.data(),
                                "serve", after);
}
