// Serving-layer benchmarks (google-benchmark): QueryEngine::TopK QPS
// and latency over a score bundle built from the 131k-page site graph
// (655 sites x 200 pages, the same shape the reorder suite uses).
//
// The bundle carries a real PageRank vector of that graph (mass-n
// convention) and a quality vector derived from it the way the
// estimator would (PR scaled by a per-page relative-increase factor),
// so the score distributions — and therefore the threshold algorithm's
// stopping depth — are the ones the serving layer actually sees.
//
// Suites:
//   BM_BundleLoad          image -> validated LoadedBundle (pages/s)
//   BM_TopK/alpha:*        single-thread QPS per blend mode
//   BM_TopKSite/*          per-site filtered queries (site rotates)
//   BM_TopKExplore         Pandey exploration mix enabled
//   BM_TopKThreads/*       concurrent readers on one shared store
//   BM_TopKHotSwap         reader QPS + sampled p50/p99 latency while
//                          a background publisher churns generations
//   BM_Publish             hot-swap publish cost itself
//
// With --distributed the binary instead benches the sharded tier: the
// same 131k bundle is split by site into N shards, each served by an
// in-process WorkerServer on a loopback socket, and BM_DistTopK drives
// the coordinator's fan-out/merge round trip end to end:
//   BM_DistTopK/shards:*        deterministic global queries, QPS +
//                               per-query p50/p99 over the socket RTT
//   BM_DistTopKExplore/shards:4 exploration replay + resolve wave
// The suite writes BENCH_serve_dist.json instead of BENCH_serve.json.
//
// With --check_serve_regression the process exits non-zero when the
// single-thread pure-quality QPS falls under the CI floor (a
// conservative fraction of the >= 1M/s this suite shows on dedicated
// hardware) or the hot-swap churn rows are missing/zero — the Release
// bench job's smoke gate. Combined with --distributed the gate instead
// checks every BM_DistTopK row at 2/4/8 shards: QPS floor, p99
// ceiling, and zero degraded queries (a degraded answer on an idle
// loopback deployment means the deadline machinery misfired).

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/shard_map.h"
#include "dist/worker.h"
#include "graph/generators.h"
#include "rank/pagerank.h"
#include "serve/query_engine.h"
#include "serve/score_bundle.h"
#include "serve/snapshot_store.h"

namespace {

using qrank::CsrGraph;
using qrank::kAllSites;
using qrank::LoadedBundle;
using qrank::NodeId;
using qrank::QueryEngine;
using qrank::ScoreBundleSource;
using qrank::ScoreBundleWriter;
using qrank::SiteId;
using qrank::SnapshotStore;
using qrank::TopKQuery;
using qrank::TopKScratch;

constexpr NodeId kNumSites = 655;
constexpr NodeId kPagesPerSite = 200;  // 131k pages total

// PageRank of the site-clustered graph plus an estimator-shaped quality
// vector; `seed` varies the quality factors so churned generations
// differ.
ScoreBundleSource MakeSource(uint64_t seed) {
  static const std::vector<double>* pagerank = [] {
    qrank::Rng rng(99);
    const CsrGraph g =
        CsrGraph::FromEdgeList(
            qrank::GenerateSiteClustered(kNumSites, kPagesPerSite, 12, 6,
                                         &rng)
                .value())
            .value();
    qrank::PageRankOptions o;
    o.max_iterations = 30;
    o.scale = qrank::ScaleConvention::kTotalMassN;
    return new std::vector<double>(
        qrank::ComputePageRank(g, o).value().scores);
  }();
  ScoreBundleSource src;
  src.pagerank = *pagerank;
  const NodeId n = static_cast<NodeId>(src.pagerank.size());
  src.quality.resize(n);
  src.site_ids.resize(n);
  qrank::Rng rng(seed);
  for (NodeId i = 0; i < n; ++i) {
    // Q = C*I + PR with a random relative increase I/PR in [-0.5, 2].
    src.quality[i] = src.pagerank[i] * (1.0 + rng.UniformDouble(-0.5, 2.0));
    src.site_ids[i] = i / kPagesPerSite;
  }
  src.num_sites = kNumSites;
  src.creator_tag = static_cast<uint32_t>(seed);
  return src;
}

std::vector<uint8_t> MakeImage(uint64_t seed) {
  return ScoreBundleWriter::Create(MakeSource(seed)).value().Serialize();
}

const LoadedBundle& Bundle() {
  static const LoadedBundle b =
      LoadedBundle::FromBuffer(MakeImage(7)).value();
  return b;
}

TopKQuery BlendQuery(int alpha_pct, uint32_t k) {
  TopKQuery q;
  q.k = k;
  q.blend_alpha = alpha_pct / 100.0;
  return q;
}

void ReportQps(benchmark::State& state) {
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_BundleLoad(benchmark::State& state) {
  const std::vector<uint8_t> image = MakeImage(7);
  for (auto _ : state) {
    std::vector<uint8_t> copy = image;  // FromBuffer adopts its argument
    auto bundle = LoadedBundle::FromBuffer(std::move(copy));
    benchmark::DoNotOptimize(bundle.value().num_pages());
  }
  state.counters["pages/s"] = benchmark::Counter(
      static_cast<double>(Bundle().num_pages()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_TopK(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  const TopKQuery q = BlendQuery(static_cast<int>(state.range(0)),
                                 static_cast<uint32_t>(state.range(1)));
  TopKScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
    benchmark::DoNotOptimize(scratch.results().data());
  }
  ReportQps(state);
}

void BM_TopKSite(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  TopKQuery q = BlendQuery(static_cast<int>(state.range(0)), 10);
  TopKScratch scratch;
  SiteId site = 0;
  for (auto _ : state) {
    q.site = site;
    if (++site == kNumSites) site = 0;
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
  }
  ReportQps(state);
}

void BM_TopKExplore(benchmark::State& state) {
  const LoadedBundle& bundle = Bundle();
  TopKQuery q = BlendQuery(100, 10);
  q.exploration_epsilon = state.range(0) / 100.0;
  TopKScratch scratch;
  uint64_t seed = 0;
  for (auto _ : state) {
    q.exploration_seed = seed++;
    benchmark::DoNotOptimize(QueryEngine::TopKOnBundle(bundle, q, &scratch).ok());
  }
  ReportQps(state);
}

// Concurrent readers against one shared store (google-benchmark spawns
// state.threads() workers; per-thread counters are summed, so "qps" is
// the machine total).
void BM_TopKThreads(benchmark::State& state) {
  static SnapshotStore* store = [] {
    auto* s = new SnapshotStore();
    s->Publish(LoadedBundle::FromBuffer(MakeImage(7)).value());
    return s;
  }();
  const QueryEngine engine(store);
  const TopKQuery q = BlendQuery(static_cast<int>(state.range(0)), 10);
  TopKScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.TopK(q, &scratch).ok());
  }
  ReportQps(state);
}

// One reader thread measuring per-query latency while a publisher
// churns fresh generations from a second image every ~50 us — the
// hot-swap contract under load. p50/p99 are over every query in the
// timed region.
void BM_TopKHotSwap(benchmark::State& state) {
  SnapshotStore store;
  store.Publish(LoadedBundle::FromBuffer(MakeImage(7)).value());
  const QueryEngine engine(&store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> publishes{0};
  std::thread publisher([&] {
    // Alternate two premade generations; make_shared per publish keeps
    // the reclamation path (last unpin frees) in play.
    const std::vector<uint8_t> images[2] = {MakeImage(8), MakeImage(9)};
    int which = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<uint8_t> copy = images[which ^= 1];
      store.Publish(LoadedBundle::FromBuffer(std::move(copy)).value());
      publishes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  const TopKQuery q = BlendQuery(50, 10);
  TopKScratch scratch;
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 20);
  using Clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(engine.TopK(q, &scratch).ok());
    if (lat_ns.size() < lat_ns.capacity()) {
      lat_ns.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();

  std::sort(lat_ns.begin(), lat_ns.end());
  const auto pct = [&lat_ns](double p) {
    return lat_ns.empty()
               ? 0.0
               : lat_ns[static_cast<size_t>(p * (lat_ns.size() - 1))];
  };
  ReportQps(state);
  state.counters["p50_ns"] = benchmark::Counter(pct(0.50));
  state.counters["p99_ns"] = benchmark::Counter(pct(0.99));
  state.counters["publishes"] =
      benchmark::Counter(static_cast<double>(publishes.load()));
}

void BM_Publish(benchmark::State& state) {
  SnapshotStore store;
  const auto a = std::make_shared<const LoadedBundle>(
      LoadedBundle::FromBuffer(MakeImage(8)).value());
  const auto b = std::make_shared<const LoadedBundle>(
      LoadedBundle::FromBuffer(MakeImage(9)).value());
  bool which = false;
  for (auto _ : state) {
    store.Publish((which = !which) ? a : b);
  }
  state.counters["publishes/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

// ---- Distributed tier (--distributed) ------------------------------

/// One sharded loopback deployment of the 131k bundle: split files on
/// disk, an in-process WorkerServer per shard, one coordinator. Built
/// lazily per shard count and kept for the whole process (google-
/// benchmark re-enters each benchmark while estimating iteration
/// counts).
struct DistDeployment {
  std::vector<std::unique_ptr<qrank::WorkerServer>> workers;
  std::unique_ptr<qrank::Coordinator> coordinator;

  ~DistDeployment() {
    if (coordinator != nullptr) coordinator->Stop();
    for (auto& w : workers) w->Stop();
  }
};

qrank::Coordinator& DistCoordinator(int num_shards) {
  static auto* deployments =
      new std::map<int, std::unique_ptr<DistDeployment>>();
  auto it = deployments->find(num_shards);
  if (it != deployments->end()) return *it->second->coordinator;

  static const std::string* root = [] {
    char tmpl[] = "/tmp/qrank_bench_dist_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed for shard files\n");
      std::abort();
    }
    return new std::string(dir);
  }();
  const std::string dir = *root + "/shards_" + std::to_string(num_shards);
  ::mkdir(dir.c_str(), 0755);

  auto deployment = std::make_unique<DistDeployment>();
  const auto split = qrank::SplitBundleBySite(
      Bundle(), static_cast<uint32_t>(num_shards), dir);
  std::vector<qrank::ShardAddress> addresses;
  for (int s = 0; s < num_shards; ++s) {
    auto worker =
        std::make_unique<qrank::WorkerServer>(qrank::WorkerServer::Options{});
    if (!worker
             ->Init(split.value().bundle_paths[s], split.value().meta_paths[s])
             .ok() ||
        !worker->Start().ok()) {
      std::fprintf(stderr, "worker %d failed to start\n", s);
      std::abort();
    }
    qrank::ShardAddress address;
    address.primary.port = worker->port();
    addresses.push_back(address);
    deployment->workers.push_back(std::move(worker));
  }
  // Wide deadline/hedge: the bench box may be a loaded shared runner,
  // and the gate asserts ZERO degraded queries — a scheduler stall must
  // not read as a deadline miss. The hedge path gets its own coverage
  // in dist_fault_test.
  qrank::CoordinatorOptions options;
  options.query_deadline = std::chrono::milliseconds(5000);
  options.hedge_delay = std::chrono::milliseconds(2000);
  deployment->coordinator = std::make_unique<qrank::Coordinator>(
      split.value().map, std::move(addresses), options);
  if (!deployment->coordinator->Start().ok()) {
    std::fprintf(stderr, "coordinator failed to start\n");
    std::abort();
  }
  qrank::Coordinator& coord = *deployment->coordinator;
  deployments->emplace(num_shards, std::move(deployment));
  return coord;
}

void ReportLatencyPercentiles(benchmark::State& state,
                              std::vector<double>& lat_ns) {
  std::sort(lat_ns.begin(), lat_ns.end());
  const auto pct = [&lat_ns](double p) {
    return lat_ns.empty()
               ? 0.0
               : lat_ns[static_cast<size_t>(p * (lat_ns.size() - 1))];
  };
  state.counters["p50_ns"] = benchmark::Counter(pct(0.50));
  state.counters["p99_ns"] = benchmark::Counter(pct(0.99));
}

/// Deterministic global queries through the full coordinator round
/// trip: encode, fan-out over loopback sockets, worker-side engine,
/// exact merge. Latency is sampled per query (the socket RTT dominates,
/// so the sampling cost is noise).
void BM_DistTopK(benchmark::State& state) {
  qrank::Coordinator& coord =
      DistCoordinator(static_cast<int>(state.range(0)));
  const TopKQuery q = BlendQuery(50, 10);
  qrank::DistTopKResult result;
  const uint64_t degraded_before = coord.degraded_queries();
  const uint64_t hedges_before = coord.hedges_fired();
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 20);
  using Clock = std::chrono::steady_clock;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(coord.TopK(q, &result).ok());
    if (lat_ns.size() < lat_ns.capacity()) {
      lat_ns.push_back(
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count());
    }
  }
  ReportQps(state);
  ReportLatencyPercentiles(state, lat_ns);
  state.counters["degraded"] = benchmark::Counter(
      static_cast<double>(coord.degraded_queries() - degraded_before));
  state.counters["hedges"] = benchmark::Counter(
      static_cast<double>(coord.hedges_fired() - hedges_before));
}

/// Exploration on the distributed path: the coordinator replays the
/// engine's RNG loop over the merged top-k, then runs a second
/// (resolve) wave for the promoted rows — two socket round trips per
/// query instead of one.
void BM_DistTopKExplore(benchmark::State& state) {
  qrank::Coordinator& coord =
      DistCoordinator(static_cast<int>(state.range(0)));
  TopKQuery q = BlendQuery(100, 10);
  q.exploration_epsilon = 0.10;
  qrank::DistTopKResult result;
  const uint64_t degraded_before = coord.degraded_queries();
  uint64_t seed = 0;
  for (auto _ : state) {
    q.exploration_seed = seed++;
    benchmark::DoNotOptimize(coord.TopK(q, &result).ok());
  }
  ReportQps(state);
  state.counters["degraded"] = benchmark::Counter(
      static_cast<double>(coord.degraded_queries() - degraded_before));
}

void RegisterDist() {
  const auto us = [](benchmark::internal::Benchmark* b) {
    b->Unit(benchmark::kMicrosecond)->UseRealTime();
  };
  // shards:1 anchors the scaling table (pure RPC overhead vs BM_TopK);
  // 2/4/8 are the gated points.
  for (int shards : {1, 2, 4, 8}) {
    us(benchmark::RegisterBenchmark(
           ("BM_DistTopK/shards:" + std::to_string(shards)).c_str(),
           BM_DistTopK)
           ->Arg(shards));
  }
  us(benchmark::RegisterBenchmark("BM_DistTopKExplore/shards:4",
                                  BM_DistTopKExplore)
         ->Arg(4));
}

void RegisterAll() {
  const auto us = [](benchmark::internal::Benchmark* b) {
    b->Unit(benchmark::kMicrosecond)->UseRealTime();
  };
  us(benchmark::RegisterBenchmark("BM_BundleLoad", BM_BundleLoad));
  for (int alpha : {100, 50, 0}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopK/alpha:" + std::to_string(alpha) + "/k:10").c_str(),
           BM_TopK)
           ->Args({alpha, 10}));
  }
  us(benchmark::RegisterBenchmark("BM_TopK/alpha:50/k:100", BM_TopK)
         ->Args({50, 100}));
  for (int alpha : {100, 50}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopKSite/alpha:" + std::to_string(alpha)).c_str(),
           BM_TopKSite)
           ->Arg(alpha));
  }
  us(benchmark::RegisterBenchmark("BM_TopKExplore/eps:10", BM_TopKExplore)
         ->Arg(10));
  for (int threads : {1, 2, 4}) {
    us(benchmark::RegisterBenchmark(
           ("BM_TopKThreads/alpha:100/threads:" + std::to_string(threads))
               .c_str(),
           BM_TopKThreads)
           ->Arg(100)
           ->Threads(threads));
  }
  us(benchmark::RegisterBenchmark("BM_TopKHotSwap/alpha:50", BM_TopKHotSwap));
  us(benchmark::RegisterBenchmark("BM_Publish", BM_Publish));
}

// CI smoke gate. The dedicated-hardware numbers are >= 1M qps for the
// pure-quality path; shared CI runners get a conservative floor so the
// gate catches order-of-magnitude regressions (an accidental per-query
// allocation or scan) without flaking on machine noise.
int CheckServeRegression(const std::vector<qrank_bench::BenchRow>& rows) {
  constexpr double kMinPureQps = 2e5;
  const auto find = [&rows](const std::string& name) -> const qrank_bench::BenchRow* {
    for (const qrank_bench::BenchRow& r : rows) {
      if (r.name.rfind(name, 0) == 0) return &r;
    }
    return nullptr;
  };
  const qrank_bench::BenchRow* pure = find("BM_TopK/alpha:100/k:10");
  if (pure == nullptr || pure->Counter("qps") < kMinPureQps) {
    std::fprintf(stderr,
                 "serve gate FAILED: BM_TopK/alpha:100/k:10 %s (floor %.3g "
                 "qps)\n",
                 pure == nullptr ? "missing" : "below floor", kMinPureQps);
    return 1;
  }
  const qrank_bench::BenchRow* churn = find("BM_TopKHotSwap");
  if (churn == nullptr || churn->Counter("qps") <= 0.0 ||
      churn->Counter("publishes") <= 0.0) {
    std::fprintf(stderr,
                 "serve gate FAILED: hot-swap churn row missing or idle\n");
    return 1;
  }
  std::printf("serve gate: pure-quality %.4g qps, churn %.4g qps over %g "
              "publishes (p99 %.4g ns)\n",
              pure->Counter("qps"), churn->Counter("qps"),
              churn->Counter("publishes"), churn->Counter("p99_ns"));
  return 0;
}

// Distributed CI gate: every gated shard count must be present, clear
// a conservative QPS floor (the loopback RTT puts the tier orders of
// magnitude under the in-process engine; the floor catches a lost
// pipeline — per-query reconnects, a serialization stall — not machine
// noise), stay under a generous p99 ceiling, and answer every query
// undegraded.
int CheckDistRegression(const std::vector<qrank_bench::BenchRow>& rows) {
  constexpr double kMinDistQps = 500.0;
  constexpr double kMaxDistP99Ns = 100e6;  // 100 ms
  const auto find = [&rows](const std::string& name) -> const qrank_bench::BenchRow* {
    for (const qrank_bench::BenchRow& r : rows) {
      if (r.name.rfind(name, 0) == 0) return &r;
    }
    return nullptr;
  };
  int failures = 0;
  for (const int shards : {2, 4, 8}) {
    const std::string name = "BM_DistTopK/shards:" + std::to_string(shards);
    const qrank_bench::BenchRow* row = find(name);
    if (row == nullptr) {
      std::fprintf(stderr, "dist gate FAILED: %s missing\n", name.c_str());
      ++failures;
      continue;
    }
    int row_failures = 0;
    if (row->Counter("qps") < kMinDistQps) {
      std::fprintf(stderr, "dist gate FAILED: %s %.4g qps (floor %.3g)\n",
                   name.c_str(), row->Counter("qps"), kMinDistQps);
      ++row_failures;
    }
    if (row->Counter("p99_ns") > kMaxDistP99Ns) {
      std::fprintf(stderr, "dist gate FAILED: %s p99 %.4g ns (ceiling %.3g)\n",
                   name.c_str(), row->Counter("p99_ns"), kMaxDistP99Ns);
      ++row_failures;
    }
    if (row->Counter("degraded") != 0.0) {
      std::fprintf(stderr, "dist gate FAILED: %s %g degraded queries on an "
                           "idle loopback deployment\n",
                   name.c_str(), row->Counter("degraded"));
      ++row_failures;
    }
    if (row_failures == 0) {
      std::printf("dist gate: %s %.4g qps, p99 %.4g ns, 0 degraded\n",
                  name.c_str(), row->Counter("qps"), row->Counter("p99_ns"));
    }
    failures += row_failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_gate = false;
  bool distributed = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--check_serve_regression") {
      check_gate = true;
      continue;
    }
    if (std::string(argv[i]) == "--distributed") {
      distributed = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (distributed) {
    RegisterDist();
  } else {
    RegisterAll();
  }
  std::function<int(const std::vector<qrank_bench::BenchRow>&)> after;
  if (check_gate) after = distributed ? CheckDistRegression : CheckServeRegression;
  return qrank_bench::BenchMain(static_cast<int>(args.size()), args.data(),
                                distributed ? "serve_dist" : "serve", after);
}
