// Ablation: the popularity metric inside Equation 1.
//
// Footnote 4 of the paper: "We may replace PR(p) in the formula with
// the number of links", and Section 5: "We can use here any measure of
// popularity." This bench runs the same crawl experiment with three
// popularity metrics feeding the estimator —
//   (a) PageRank (the paper's choice),
//   (b) in-degree (raw link count),
//   (c) the traffic rate (visits per unit time, Section 9.1)
// — and compares how well each estimator predicts the corresponding
// future metric, plus how well each ranks pages by true quality.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/stats.h"
#include "common/table_writer.h"
#include "core/evaluation.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "core/visit_trace.h"
#include "rank/baselines.h"
#include "sim/web_simulator.h"

namespace {

struct MetricOutcome {
  double err_estimate = 0.0;
  double err_current = 0.0;
  double improvement = 0.0;
  double spearman_truth = 0.0;
};

qrank::Result<MetricOutcome> Evaluate(
    const std::vector<std::vector<double>>& observations,
    const std::vector<double>& future,
    const std::vector<double>& truth) {
  QRANK_ASSIGN_OR_RETURN(qrank::QualityEstimate est,
                         qrank::EstimateQuality(observations));
  QRANK_ASSIGN_OR_RETURN(
      qrank::PredictionComparison cmp,
      qrank::CompareFuturePrediction(est, observations.back(), future));
  MetricOutcome out;
  out.err_estimate = cmp.quality.mean_error;
  out.err_current = cmp.pagerank.mean_error;
  out.improvement = cmp.improvement_factor;
  QRANK_ASSIGN_OR_RETURN(out.spearman_truth,
                         qrank::SpearmanCorrelation(est.quality, truth));
  return out;
}

}  // namespace

int main() {
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1000;
  sim_options.seed = 606;
  sim_options.page_birth_rate = 30.0;
  sim_options.visit_rate_factor = 2.0;
  sim_options.forget_rate = 0.08;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) return EXIT_FAILURE;

  qrank::SnapshotSeries series;
  qrank::VisitTraceRecorder trace;
  const std::vector<double> times = {16.0, 20.0, 24.0, 32.0};
  std::vector<std::vector<double>> indegree_obs;
  for (double t : times) {
    if (!sim->AdvanceTo(t).ok()) return EXIT_FAILURE;
    auto g = sim->Snapshot();
    if (!g.ok()) return EXIT_FAILURE;
    if (!trace.Sample(*sim).ok()) return EXIT_FAILURE;
    indegree_obs.push_back(qrank::InDegreeScores(*g));
    if (!series.AddSnapshot(t, std::move(g).value()).ok()) {
      return EXIT_FAILURE;
    }
  }
  qrank::PageRankOptions pr;
  pr.scale = qrank::ScaleConvention::kTotalMassN;
  if (!series.ComputePageRanks(pr, /*warm_start=*/true).ok()) {
    return EXIT_FAILURE;
  }

  const qrank::NodeId common = series.CommonNodeCount();
  std::vector<double> truth(common);
  for (qrank::NodeId p = 0; p < common; ++p) {
    truth[p] = sim->TrueQuality(p);
  }

  // (a) PageRank observations.
  std::vector<std::vector<double>> pagerank_obs = {
      series.pagerank(0), series.pagerank(1), series.pagerank(2)};
  auto pr_out = Evaluate(pagerank_obs, series.pagerank(3), truth);

  // (b) In-degree observations (clipped to common pages, floored at a
  // tiny positive value: the estimator needs positivity).
  std::vector<std::vector<double>> indeg(4);
  for (size_t i = 0; i < 4; ++i) {
    indeg[i].assign(indegree_obs[i].begin(),
                    indegree_obs[i].begin() + common);
    for (double& v : indeg[i]) {
      if (!(v > 0.0)) v = 0.5;
    }
  }
  auto deg_out = Evaluate({indeg[0], indeg[1], indeg[2]}, indeg[3], truth);

  // (c) Traffic-rate observations (Section 9.1): interval visit rates.
  qrank::TrafficEstimatorOptions traffic_options;
  traffic_options.visit_rate_normalization =
      sim_options.visit_rate_factor * sim_options.num_users;
  std::vector<qrank::TrafficSnapshot> aligned = trace.AlignedSnapshots();
  for (auto& s : aligned) s.cumulative_visits.resize(common);
  auto rates = qrank::TrafficPopularityObservations(aligned, traffic_options);
  if (!rates.ok()) return EXIT_FAILURE;
  // 4 samples -> 3 rate intervals: use the first two as observations,
  // the last as the future.
  auto traffic_out = Evaluate({(*rates)[0], (*rates)[1]}, (*rates)[2],
                              truth);

  if (!pr_out.ok() || !deg_out.ok() || !traffic_out.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return EXIT_FAILURE;
  }

  std::printf("=== Ablation: popularity metric inside Equation 1 ===\n");
  std::printf("(footnote 4: 'we may replace PR(p) … with the number of "
              "links'; Section 5: 'we can use here any measure of "
              "popularity')\n\n");
  qrank::TableWriter out({"popularity metric", "err estimator",
                          "err current value", "improvement",
                          "Spearman vs truth"});
  auto row = [&](const char* name, const MetricOutcome& o) {
    out.AddRow({name, qrank::TableWriter::FormatDouble(o.err_estimate, 4),
                qrank::TableWriter::FormatDouble(o.err_current, 4),
                qrank::TableWriter::FormatDouble(o.improvement, 3),
                qrank::TableWriter::FormatDouble(o.spearman_truth, 3)});
  };
  row("PageRank (paper)", *pr_out);
  row("in-degree (footnote 4)", *deg_out);
  row("traffic rate (Sec 9.1)", *traffic_out);
  out.RenderAscii(std::cout);

  // The nuanced finding this ablation surfaces: the estimator's
  // advantage depends on how SMOOTH the popularity measure is. PageRank
  // aggregates the whole link structure and is smooth; raw in-degree is
  // choppier (and C = 0.1 was tuned for PageRank's scale); single-
  // interval traffic rates are so noisy that extrapolating them hurts —
  // precisely the statistical-noise concern of Section 9.1. The paper's
  // choice of PageRank as the popularity measure is thereby justified,
  // not arbitrary.
  bool ok = pr_out->improvement > 1.0 &&
            pr_out->improvement > deg_out->improvement &&
            pr_out->improvement > traffic_out->improvement;
  if (ok) {
    std::printf("\nPASS: Equation 1 works best with PageRank as the "
                "popularity measure (%.2fx vs %.2fx in-degree, %.2fx "
                "raw traffic rate) — noisy measures dilute or invert "
                "the advantage, matching Section 9.1's noise analysis\n",
                pr_out->improvement, deg_out->improvement,
                traffic_out->improvement);
  } else {
    std::printf("\nFAIL: unexpected ordering of popularity metrics\n");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
