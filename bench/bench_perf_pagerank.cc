// Performance of the PageRank engines (google-benchmark).
//
// Covers the repro hint "efficient sparse matrix PageRank": power
// iteration vs Gauss-Seidel vs adaptive vs quadratic extrapolation on
// Barabasi-Albert graphs of growing size, at the tolerance used by the
// Section 8 pipeline. Iteration counts are exported as counters so the
// acceleration claims of [11]/[12] are visible alongside wall-clock.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rank/adaptive_pagerank.h"
#include "rank/extrapolation.h"
#include "rank/opic.h"
#include "rank/pagerank.h"

namespace {

qrank::CsrGraph MakeGraph(int64_t nodes) {
  qrank::Rng rng(1234);
  return qrank::CsrGraph::FromEdgeList(
             qrank::GenerateBarabasiAlbert(
                 static_cast<qrank::NodeId>(nodes), 8, &rng)
                 .value())
      .value();
}

qrank::PageRankOptions BaseOptions() {
  qrank::PageRankOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 1000;
  return o;
}

void BM_PageRankPower(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * iterations,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankGaussSeidel(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRankGaussSeidel(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankAdaptive(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::AdaptivePageRankOptions o;
  o.base = BaseOptions();
  o.freeze_threshold = 1e-6;
  uint32_t iterations = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeAdaptivePageRank(g, o);
    iterations = r->base.iterations;
    updates = r->node_updates;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["upd/iter/node"] =
      static_cast<double>(updates) /
      (static_cast<double>(iterations) * static_cast<double>(g.num_nodes()));
}

void BM_PageRankExtrapolated(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::ExtrapolatedPageRankOptions o;
  o.base = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeExtrapolatedPageRank(g, o);
    iterations = r->base.iterations;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_OpicSweeps(benchmark::State& state) {
  // Online importance: cost of 10 OPIC sweeps (usable estimates arrive
  // long before full convergence; see tests/rank/opic_test.cc).
  qrank::CsrGraph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto opic = qrank::OpicComputer::Create(&g);
    opic->RunSweeps(10);
    benchmark::DoNotOptimize(opic->Importance().data());
  }
}

void BM_PageRankWarmStart(benchmark::State& state) {
  // Iterations saved by warm-starting from a slightly perturbed
  // solution (the cross-snapshot case of SnapshotSeries).
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  auto cold = qrank::ComputePageRank(g, o);
  const bool warm = state.range(0) == 1;
  if (warm) o.initial_scores = cold->scores;
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankHighDamping(benchmark::State& state) {
  // Damping 0.95: slow spectral gap; where extrapolation pays off most.
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  o.damping = 0.95;
  const bool extrapolate = state.range(0) == 1;
  uint32_t iterations = 0;
  for (auto _ : state) {
    if (extrapolate) {
      qrank::ExtrapolatedPageRankOptions eo;
      eo.base = o;
      auto r = qrank::ComputeExtrapolatedPageRank(g, eo);
      iterations = r->base.iterations;
      benchmark::DoNotOptimize(r->base.scores.data());
    } else {
      auto r = qrank::ComputePageRank(g, o);
      iterations = r->iterations;
      benchmark::DoNotOptimize(r->scores.data());
    }
  }
  state.counters["iters"] = iterations;
}

}  // namespace

BENCHMARK(BM_PageRankPower)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankGaussSeidel)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankAdaptive)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankExtrapolated)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankHighDamping)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpicSweeps)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankWarmStart)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
