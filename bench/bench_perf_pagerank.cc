// Performance of the PageRank engines (google-benchmark).
//
// Covers the repro hint "efficient sparse matrix PageRank": power
// iteration vs Gauss-Seidel vs adaptive vs quadratic extrapolation on
// Barabasi-Albert graphs of growing size, at the tolerance used by the
// Section 8 pipeline. Iteration counts are exported as counters so the
// acceleration claims of [11]/[12] are visible alongside wall-clock.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "rank/adaptive_pagerank.h"
#include "rank/extrapolation.h"
#include "rank/opic.h"
#include "rank/pagerank.h"
#include "rank/sweep_ops.h"

namespace {

// Set by --order= / --partition= / --kernel= / --compressed= in main;
// consumed by the site-locality benchmarks below. The BM_PageRankKernel
// family ignores these and pins its own variants so the regression gate
// always compares scalar vs SIMD within one run.
qrank::NodeOrdering g_order = qrank::NodeOrdering::kIdentity;
qrank::SweepPartition g_partition = qrank::SweepPartition::kEdgeBalanced;
qrank::KernelVariant g_kernel = qrank::KernelVariant::kScalar;
bool g_compressed = false;

qrank::CsrGraph MakeGraph(int64_t nodes, uint32_t out_degree = 8) {
  qrank::Rng rng(1234);
  return qrank::CsrGraph::FromEdgeList(
             qrank::GenerateBarabasiAlbert(
                 static_cast<qrank::NodeId>(nodes), out_degree, &rng)
                 .value())
      .value();
}

qrank::PageRankOptions BaseOptions() {
  qrank::PageRankOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 1000;
  return o;
}

void BM_PageRankPower(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * iterations,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankGaussSeidel(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRankGaussSeidel(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankAdaptive(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::AdaptivePageRankOptions o;
  o.base = BaseOptions();
  o.freeze_threshold = 1e-6;
  uint32_t iterations = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeAdaptivePageRank(g, o);
    iterations = r->base.iterations;
    updates = r->node_updates;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["upd/iter/node"] =
      static_cast<double>(updates) /
      (static_cast<double>(iterations) * static_cast<double>(g.num_nodes()));
}

void BM_PageRankExtrapolated(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::ExtrapolatedPageRankOptions o;
  o.base = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeExtrapolatedPageRank(g, o);
    iterations = r->base.iterations;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_OpicSweeps(benchmark::State& state) {
  // Online importance: cost of 10 OPIC sweeps (usable estimates arrive
  // long before full convergence; see tests/rank/opic_test.cc).
  qrank::CsrGraph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto opic = qrank::OpicComputer::Create(&g);
    opic->RunSweeps(10);
    benchmark::DoNotOptimize(opic->Importance().data());
  }
}

void BM_PageRankWarmStart(benchmark::State& state) {
  // Iterations saved by warm-starting from a slightly perturbed
  // solution (the cross-snapshot case of SnapshotSeries).
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  auto cold = qrank::ComputePageRank(g, o);
  const bool warm = state.range(0) == 1;
  if (warm) o.initial_scores = cold->scores;
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankHighDamping(benchmark::State& state) {
  // Damping 0.95: slow spectral gap; where extrapolation pays off most.
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  o.damping = 0.95;
  const bool extrapolate = state.range(0) == 1;
  uint32_t iterations = 0;
  for (auto _ : state) {
    if (extrapolate) {
      qrank::ExtrapolatedPageRankOptions eo;
      eo.base = o;
      auto r = qrank::ComputeExtrapolatedPageRank(g, eo);
      iterations = r->base.iterations;
      benchmark::DoNotOptimize(r->base.scores.data());
    } else {
      auto r = qrank::ComputePageRank(g, o);
      iterations = r->iterations;
      benchmark::DoNotOptimize(r->scores.data());
    }
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankPowerThreads(benchmark::State& state) {
  // Thread sweep at acceptance scale: Barabasi-Albert n = 2^18, m = 8
  // (~2M edges after dedup). Fixed 20 iterations so every thread count
  // does identical work; the parallel-equivalence test proves the scores
  // are bit-identical across this sweep.
  static qrank::CsrGraph g = MakeGraph(1 << 18);
  g.BuildTranspose();  // shared cache; build outside the timed region
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

// Site-clustered web (num_sites x 200 pages at ~13 links/page, the
// Section 8 crawl shape) under a fixed pseudorandom relabeling. The
// generator emits each site's pages contiguously — already near-optimal
// cache layout — but a real crawl discovers pages interleaved across
// sites, so the benchmark input models that crawl order. This is the
// labeling the --order= reorderings recover locality from.
qrank::CsrGraph MakeCrawlOrderSiteGraph(qrank::NodeId num_sites) {
  qrank::Rng rng(99);
  qrank::CsrGraph g =
      qrank::CsrGraph::FromEdgeList(
          qrank::GenerateSiteClustered(num_sites, 200, 12, 6, &rng).value())
          .value();
  std::vector<qrank::NodeId> scramble(g.num_nodes());
  std::iota(scramble.begin(), scramble.end(), qrank::NodeId{0});
  for (qrank::NodeId i = g.num_nodes(); i > 1; --i) {
    std::swap(scramble[i - 1], scramble[rng.UniformUint64(i)]);
  }
  return g.Permute(scramble).value();
}

struct SiteLocalityCase {
  qrank::CsrGraph crawl;
  qrank::ReorderedGraph reordered;
  double linf = 0.0;  // L-inf distance from the identity-order scores
};

SiteLocalityCase MakeSiteLocalityCase(qrank::NodeId num_sites) {
  SiteLocalityCase c;
  c.crawl = MakeCrawlOrderSiteGraph(num_sites);
  c.reordered = qrank::ReorderGraph(c.crawl, g_order).value();
  qrank::PageRankOptions ref = BaseOptions();
  ref.max_iterations = 20;
  ref.tolerance = 1e-300;
  ref.partition = g_partition;
  ref.num_threads = 1;
  const std::vector<double> ours = qrank::RemapToOriginal(
      qrank::ComputePageRank(c.reordered.graph, ref)->scores,
      c.reordered.perm);
  const std::vector<double> base =
      qrank::ComputePageRank(c.crawl, ref)->scores;
  for (size_t i = 0; i < base.size(); ++i) {
    c.linf = std::max(c.linf, std::fabs(ours[i] - base[i]));
  }
  return c;
}

void RunSiteLocality(benchmark::State& state, const SiteLocalityCase& c) {
  // The acceptance benchmark of the reordering work: fixed 20 Jacobi
  // iterations on the crawl-order graph relabeled by --order= and
  // partitioned by --partition=, across a thread sweep. The
  // linf_vs_identity counter is the L-infinity distance (after mapping
  // back to crawl-order ids) from the identity-ordering scores — the
  // 1e-12 agreement contract that makes the orderings interchangeable.
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.partition = g_partition;
  o.kernel = g_kernel;
  o.use_compressed_transpose = g_compressed;
  o.num_threads = static_cast<int>(state.range(0));
  c.reordered.graph.BuildTranspose();  // outside the timed region
  if (g_compressed) c.reordered.graph.BuildCompressedTranspose();
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(c.reordered.graph, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["linf_vs_identity"] = c.linf;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(c.reordered.graph.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankSiteLocality(benchmark::State& state) {
  // 131k pages: the score arrays fit mid-level cache on big-LLC hosts,
  // so the ordering win here is the lower bound of the effect.
  static const SiteLocalityCase c = MakeSiteLocalityCase(655);
  RunSiteLocality(state, c);
}

void BM_PageRankSiteLocalityXL(benchmark::State& state) {
  // 1M pages: the gathered out-share array (8 MB) exceeds any private
  // cache, the regime the reordering is actually for.
  static const SiteLocalityCase c = MakeSiteLocalityCase(5000);
  RunSiteLocality(state, c);
}

// ---------------------------------------------------------------------------
// Kernel throughput: scalar vs SIMD x raw vs compressed transpose, on
// the sitexl graph under the --order= relabeling. Fixed 20 Jacobi
// iterations; counters carry edges/s, the resolved dispatch level and
// the measured in-neighbor bytes-per-edge, and the
// --check_kernel_regression gate in main reads them back.
// ---------------------------------------------------------------------------

const qrank::CsrGraph& KernelGraph() {
  static const qrank::CsrGraph g = [] {
    qrank::CsrGraph crawl = MakeCrawlOrderSiteGraph(5000);
    qrank::CsrGraph ordered =
        std::move(qrank::ReorderGraph(crawl, g_order).value().graph);
    ordered.BuildTranspose();
    ordered.BuildCompressedTranspose();
    return ordered;
  }();
  return g;
}

void RunKernelThroughput(benchmark::State& state, qrank::KernelVariant kernel,
                         bool compressed) {
  const qrank::CsrGraph& g = KernelGraph();
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.partition = g_partition;
  o.kernel = kernel;
  o.use_compressed_transpose = compressed;
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  const qrank::TransposeStorageStats storage =
      qrank::ComputeTransposeStorage(g);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["simd_level"] = static_cast<double>(
      qrank::rank_internal::KernelVariantLevel(kernel));
  state.counters["bytes_per_edge"] = compressed
                                         ? storage.compressed_bytes_per_edge
                                         : storage.raw_bytes_per_edge;
  state.counters["compression_ratio"] = storage.compression_ratio;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankKernelScalar(benchmark::State& state) {
  RunKernelThroughput(state, qrank::KernelVariant::kScalar, false);
}
void BM_PageRankKernelScalarCompressed(benchmark::State& state) {
  RunKernelThroughput(state, qrank::KernelVariant::kScalar, true);
}
void BM_PageRankKernelSimd(benchmark::State& state) {
  RunKernelThroughput(state, qrank::KernelVariant::kSimd, false);
}
void BM_PageRankKernelSimdCompressed(benchmark::State& state) {
  RunKernelThroughput(state, qrank::KernelVariant::kSimd, true);
}

// --check_kernel_regression: fails the process unless, within this very
// run, (a) the SIMD kernel beat the scalar oracle on sitexl by
// --min_simd_speedup (default 1.2x; within-run ratios survive host
// changes where absolute floors do not), (b) SIMD throughput cleared
// --min_simd_edges_per_s (default 700M/s, the PR acceptance floor of
// 2x the 355M/s the scalar kernel shipped at), and (c) the delta-gap
// transpose actually compressed by >= --min_compression (default 1.8x).
int CheckKernelRegression(const std::vector<qrank_bench::BenchRow>& rows,
                          double min_speedup, double min_edges_per_s,
                          double min_compression) {
  auto find = [&rows](const std::string& name) -> const qrank_bench::BenchRow* {
    for (const qrank_bench::BenchRow& r : rows) {
      if (r.name.rfind(name, 0) == 0) return &r;
    }
    return nullptr;
  };
  const qrank_bench::BenchRow* scalar = find("BM_PageRankKernelScalar/");
  const qrank_bench::BenchRow* simd = find("BM_PageRankKernelSimd/");
  const qrank_bench::BenchRow* compressed =
      find("BM_PageRankKernelSimdCompressed/");
  if (scalar == nullptr || simd == nullptr || compressed == nullptr) {
    std::fprintf(stderr,
                 "check_kernel_regression: kernel benchmarks missing from "
                 "this run (use a filter that keeps BM_PageRankKernel*)\n");
    return 1;
  }
  int rc = 0;
  const double scalar_rate = scalar->Counter("edges/s");
  const double simd_rate = simd->Counter("edges/s");
  const double speedup = scalar_rate > 0.0 ? simd_rate / scalar_rate : 0.0;
  const double ratio = compressed->Counter("compression_ratio");
  if (simd->Counter("simd_level") < 2.0) {
    // Scalar-only host/build, or AVX2-only (level 1): the documented
    // speedup comes from 512-bit gathers — AVX2's are microcoded on
    // common cores and land at scalar speed, so gating throughput
    // there would flake on mixed CI fleets. Still enforce the
    // compression gate, which is host-independent.
    std::fprintf(stderr,
                 "check_kernel_regression: AVX-512 unavailable (dispatch "
                 "level %.0f); skipping throughput gates\n",
                 simd->Counter("simd_level"));
  } else {
    if (speedup < min_speedup) {
      std::fprintf(stderr,
                   "check_kernel_regression: FAIL simd/scalar speedup "
                   "%.2fx < %.2fx (scalar %.3g simd %.3g edges/s)\n",
                   speedup, min_speedup, scalar_rate, simd_rate);
      rc = 1;
    }
    if (simd_rate < min_edges_per_s) {
      std::fprintf(stderr,
                   "check_kernel_regression: FAIL simd throughput %.3g "
                   "edges/s < floor %.3g\n",
                   simd_rate, min_edges_per_s);
      rc = 1;
    }
  }
  if (ratio < min_compression) {
    std::fprintf(stderr,
                 "check_kernel_regression: FAIL transpose compression "
                 "%.2fx < %.2fx\n",
                 ratio, min_compression);
    rc = 1;
  }
  if (rc == 0) {
    std::fprintf(stderr,
                 "check_kernel_regression: PASS speedup %.2fx, simd %.3g "
                 "edges/s, compression %.2fx\n",
                 speedup, simd_rate, ratio);
  }
  return rc;
}

}  // namespace

BENCHMARK(BM_PageRankPower)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankPowerThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankGaussSeidel)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankAdaptive)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankExtrapolated)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankHighDamping)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpicSweeps)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankWarmStart)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankSiteLocality)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankSiteLocalityXL)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankKernelScalar)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankKernelScalarCompressed)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankKernelSimd)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankKernelSimdCompressed)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

// Shared BenchMain handles --threads= and the BENCH_pagerank.json
// output. Stripped here: --order=identity|degree|bfs|hybrid and
// --partition=node|edge relabel/partition the site-locality and kernel
// suites; --kernel=scalar|simd|avx2|avx512 and --compressed=BOOL steer
// the site-locality benchmarks (the kernel suite pins its own
// variants); --check_kernel_regression[=BOOL] plus the
// --min_simd_speedup= / --min_simd_edges_per_s= / --min_compression=
// floors turn the run into a CI gate.
int main(int argc, char** argv) {
  bool check_regression = false;
  double min_speedup = 1.2;
  double min_edges_per_s = 7e8;
  double min_compression = 1.8;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--order=", 0) == 0) {
      g_order = qrank::ParseNodeOrdering(a.substr(8)).value();
      continue;
    }
    if (a.rfind("--partition=", 0) == 0) {
      if (!qrank::ParseSweepPartition(a.substr(12), &g_partition)) {
        std::fprintf(stderr, "bad --partition= value '%s'\n",
                     a.substr(12).c_str());
        return 1;
      }
      continue;
    }
    if (a.rfind("--kernel=", 0) == 0) {
      if (!qrank::ParseKernelVariant(a.substr(9), &g_kernel)) {
        std::fprintf(stderr, "bad --kernel= value '%s'\n",
                     a.substr(9).c_str());
        return 1;
      }
      continue;
    }
    if (a.rfind("--compressed", 0) == 0) {
      g_compressed = a != "--compressed=false" && a != "--compressed=0";
      continue;
    }
    if (a == "--check_kernel_regression" ||
        a == "--check_kernel_regression=true") {
      check_regression = true;
      continue;
    }
    if (a.rfind("--min_simd_speedup=", 0) == 0) {
      min_speedup = std::atof(a.c_str() + 19);
      continue;
    }
    if (a.rfind("--min_simd_edges_per_s=", 0) == 0) {
      min_edges_per_s = std::atof(a.c_str() + 23);
      continue;
    }
    if (a.rfind("--min_compression=", 0) == 0) {
      min_compression = std::atof(a.c_str() + 18);
      continue;
    }
    args.push_back(argv[i]);
  }
  return qrank_bench::BenchMain(
      static_cast<int>(args.size()), args.data(), "pagerank",
      [&](const std::vector<qrank_bench::BenchRow>& rows) {
        return check_regression
                   ? CheckKernelRegression(rows, min_speedup, min_edges_per_s,
                                           min_compression)
                   : 0;
      });
}
