// Performance of the PageRank engines (google-benchmark).
//
// Covers the repro hint "efficient sparse matrix PageRank": power
// iteration vs Gauss-Seidel vs adaptive vs quadratic extrapolation on
// Barabasi-Albert graphs of growing size, at the tolerance used by the
// Section 8 pipeline. Iteration counts are exported as counters so the
// acceleration claims of [11]/[12] are visible alongside wall-clock.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "rank/adaptive_pagerank.h"
#include "rank/extrapolation.h"
#include "rank/opic.h"
#include "rank/pagerank.h"

namespace {

qrank::CsrGraph MakeGraph(int64_t nodes, uint32_t out_degree = 8) {
  qrank::Rng rng(1234);
  return qrank::CsrGraph::FromEdgeList(
             qrank::GenerateBarabasiAlbert(
                 static_cast<qrank::NodeId>(nodes), out_degree, &rng)
                 .value())
      .value();
}

qrank::PageRankOptions BaseOptions() {
  qrank::PageRankOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 1000;
  return o;
}

void BM_PageRankPower(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * iterations,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankGaussSeidel(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRankGaussSeidel(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankAdaptive(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::AdaptivePageRankOptions o;
  o.base = BaseOptions();
  o.freeze_threshold = 1e-6;
  uint32_t iterations = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeAdaptivePageRank(g, o);
    iterations = r->base.iterations;
    updates = r->node_updates;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["upd/iter/node"] =
      static_cast<double>(updates) /
      (static_cast<double>(iterations) * static_cast<double>(g.num_nodes()));
}

void BM_PageRankExtrapolated(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::ExtrapolatedPageRankOptions o;
  o.base = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeExtrapolatedPageRank(g, o);
    iterations = r->base.iterations;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_OpicSweeps(benchmark::State& state) {
  // Online importance: cost of 10 OPIC sweeps (usable estimates arrive
  // long before full convergence; see tests/rank/opic_test.cc).
  qrank::CsrGraph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto opic = qrank::OpicComputer::Create(&g);
    opic->RunSweeps(10);
    benchmark::DoNotOptimize(opic->Importance().data());
  }
}

void BM_PageRankWarmStart(benchmark::State& state) {
  // Iterations saved by warm-starting from a slightly perturbed
  // solution (the cross-snapshot case of SnapshotSeries).
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  auto cold = qrank::ComputePageRank(g, o);
  const bool warm = state.range(0) == 1;
  if (warm) o.initial_scores = cold->scores;
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankHighDamping(benchmark::State& state) {
  // Damping 0.95: slow spectral gap; where extrapolation pays off most.
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  o.damping = 0.95;
  const bool extrapolate = state.range(0) == 1;
  uint32_t iterations = 0;
  for (auto _ : state) {
    if (extrapolate) {
      qrank::ExtrapolatedPageRankOptions eo;
      eo.base = o;
      auto r = qrank::ComputeExtrapolatedPageRank(g, eo);
      iterations = r->base.iterations;
      benchmark::DoNotOptimize(r->base.scores.data());
    } else {
      auto r = qrank::ComputePageRank(g, o);
      iterations = r->iterations;
      benchmark::DoNotOptimize(r->scores.data());
    }
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankPowerThreads(benchmark::State& state) {
  // Thread sweep at acceptance scale: Barabasi-Albert n = 2^18, m = 8
  // (~2M edges after dedup). Fixed 20 iterations so every thread count
  // does identical work; the parallel-equivalence test proves the scores
  // are bit-identical across this sweep.
  static qrank::CsrGraph g = MakeGraph(1 << 18);
  g.BuildTranspose();  // shared cache; build outside the timed region
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(BM_PageRankPower)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankPowerThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankGaussSeidel)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankAdaptive)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankExtrapolated)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankHighDamping)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpicSweeps)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankWarmStart)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Custom main: accept a --threads=N flag (process-wide default executor
// count for engines invoked without an explicit num_threads) before
// handing the remaining args to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--threads=", 0) == 0) {
      qrank::SetDefaultThreads(std::atoi(a.c_str() + 10));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
