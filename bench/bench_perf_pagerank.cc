// Performance of the PageRank engines (google-benchmark).
//
// Covers the repro hint "efficient sparse matrix PageRank": power
// iteration vs Gauss-Seidel vs adaptive vs quadratic extrapolation on
// Barabasi-Albert graphs of growing size, at the tolerance used by the
// Section 8 pipeline. Iteration counts are exported as counters so the
// acceleration claims of [11]/[12] are visible alongside wall-clock.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "rank/adaptive_pagerank.h"
#include "rank/extrapolation.h"
#include "rank/opic.h"
#include "rank/pagerank.h"

namespace {

// Set by --order= / --partition= in main; consumed by the site-locality
// benchmark below.
qrank::NodeOrdering g_order = qrank::NodeOrdering::kIdentity;
qrank::SweepPartition g_partition = qrank::SweepPartition::kEdgeBalanced;

qrank::CsrGraph MakeGraph(int64_t nodes, uint32_t out_degree = 8) {
  qrank::Rng rng(1234);
  return qrank::CsrGraph::FromEdgeList(
             qrank::GenerateBarabasiAlbert(
                 static_cast<qrank::NodeId>(nodes), out_degree, &rng)
                 .value())
      .value();
}

qrank::PageRankOptions BaseOptions() {
  qrank::PageRankOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 1000;
  return o;
}

void BM_PageRankPower(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * iterations,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankGaussSeidel(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::PageRankOptions o = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRankGaussSeidel(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankAdaptive(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::AdaptivePageRankOptions o;
  o.base = BaseOptions();
  o.freeze_threshold = 1e-6;
  uint32_t iterations = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeAdaptivePageRank(g, o);
    iterations = r->base.iterations;
    updates = r->node_updates;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
  state.counters["upd/iter/node"] =
      static_cast<double>(updates) /
      (static_cast<double>(iterations) * static_cast<double>(g.num_nodes()));
}

void BM_PageRankExtrapolated(benchmark::State& state) {
  qrank::CsrGraph g = MakeGraph(state.range(0));
  qrank::ExtrapolatedPageRankOptions o;
  o.base = BaseOptions();
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputeExtrapolatedPageRank(g, o);
    iterations = r->base.iterations;
    benchmark::DoNotOptimize(r->base.scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_OpicSweeps(benchmark::State& state) {
  // Online importance: cost of 10 OPIC sweeps (usable estimates arrive
  // long before full convergence; see tests/rank/opic_test.cc).
  qrank::CsrGraph g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto opic = qrank::OpicComputer::Create(&g);
    opic->RunSweeps(10);
    benchmark::DoNotOptimize(opic->Importance().data());
  }
}

void BM_PageRankWarmStart(benchmark::State& state) {
  // Iterations saved by warm-starting from a slightly perturbed
  // solution (the cross-snapshot case of SnapshotSeries).
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  auto cold = qrank::ComputePageRank(g, o);
  const bool warm = state.range(0) == 1;
  if (warm) o.initial_scores = cold->scores;
  uint32_t iterations = 0;
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    iterations = r->iterations;
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankHighDamping(benchmark::State& state) {
  // Damping 0.95: slow spectral gap; where extrapolation pays off most.
  qrank::CsrGraph g = MakeGraph(8192);
  qrank::PageRankOptions o = BaseOptions();
  o.damping = 0.95;
  const bool extrapolate = state.range(0) == 1;
  uint32_t iterations = 0;
  for (auto _ : state) {
    if (extrapolate) {
      qrank::ExtrapolatedPageRankOptions eo;
      eo.base = o;
      auto r = qrank::ComputeExtrapolatedPageRank(g, eo);
      iterations = r->base.iterations;
      benchmark::DoNotOptimize(r->base.scores.data());
    } else {
      auto r = qrank::ComputePageRank(g, o);
      iterations = r->iterations;
      benchmark::DoNotOptimize(r->scores.data());
    }
  }
  state.counters["iters"] = iterations;
}

void BM_PageRankPowerThreads(benchmark::State& state) {
  // Thread sweep at acceptance scale: Barabasi-Albert n = 2^18, m = 8
  // (~2M edges after dedup). Fixed 20 iterations so every thread count
  // does identical work; the parallel-equivalence test proves the scores
  // are bit-identical across this sweep.
  static qrank::CsrGraph g = MakeGraph(1 << 18);
  g.BuildTranspose();  // shared cache; build outside the timed region
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

// Site-clustered web (num_sites x 200 pages at ~13 links/page, the
// Section 8 crawl shape) under a fixed pseudorandom relabeling. The
// generator emits each site's pages contiguously — already near-optimal
// cache layout — but a real crawl discovers pages interleaved across
// sites, so the benchmark input models that crawl order. This is the
// labeling the --order= reorderings recover locality from.
qrank::CsrGraph MakeCrawlOrderSiteGraph(qrank::NodeId num_sites) {
  qrank::Rng rng(99);
  qrank::CsrGraph g =
      qrank::CsrGraph::FromEdgeList(
          qrank::GenerateSiteClustered(num_sites, 200, 12, 6, &rng).value())
          .value();
  std::vector<qrank::NodeId> scramble(g.num_nodes());
  std::iota(scramble.begin(), scramble.end(), qrank::NodeId{0});
  for (qrank::NodeId i = g.num_nodes(); i > 1; --i) {
    std::swap(scramble[i - 1], scramble[rng.UniformUint64(i)]);
  }
  return g.Permute(scramble).value();
}

struct SiteLocalityCase {
  qrank::CsrGraph crawl;
  qrank::ReorderedGraph reordered;
  double linf = 0.0;  // L-inf distance from the identity-order scores
};

SiteLocalityCase MakeSiteLocalityCase(qrank::NodeId num_sites) {
  SiteLocalityCase c;
  c.crawl = MakeCrawlOrderSiteGraph(num_sites);
  c.reordered = qrank::ReorderGraph(c.crawl, g_order).value();
  qrank::PageRankOptions ref = BaseOptions();
  ref.max_iterations = 20;
  ref.tolerance = 1e-300;
  ref.partition = g_partition;
  ref.num_threads = 1;
  const std::vector<double> ours = qrank::RemapToOriginal(
      qrank::ComputePageRank(c.reordered.graph, ref)->scores,
      c.reordered.perm);
  const std::vector<double> base =
      qrank::ComputePageRank(c.crawl, ref)->scores;
  for (size_t i = 0; i < base.size(); ++i) {
    c.linf = std::max(c.linf, std::fabs(ours[i] - base[i]));
  }
  return c;
}

void RunSiteLocality(benchmark::State& state, const SiteLocalityCase& c) {
  // The acceptance benchmark of the reordering work: fixed 20 Jacobi
  // iterations on the crawl-order graph relabeled by --order= and
  // partitioned by --partition=, across a thread sweep. The
  // linf_vs_identity counter is the L-infinity distance (after mapping
  // back to crawl-order ids) from the identity-ordering scores — the
  // 1e-12 agreement contract that makes the orderings interchangeable.
  qrank::PageRankOptions o = BaseOptions();
  o.max_iterations = 20;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.partition = g_partition;
  o.num_threads = static_cast<int>(state.range(0));
  c.reordered.graph.BuildTranspose();  // outside the timed region
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(c.reordered.graph, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["linf_vs_identity"] = c.linf;
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(c.reordered.graph.num_edges()) * 20.0,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_PageRankSiteLocality(benchmark::State& state) {
  // 131k pages: the score arrays fit mid-level cache on big-LLC hosts,
  // so the ordering win here is the lower bound of the effect.
  static const SiteLocalityCase c = MakeSiteLocalityCase(655);
  RunSiteLocality(state, c);
}

void BM_PageRankSiteLocalityXL(benchmark::State& state) {
  // 1M pages: the gathered out-share array (8 MB) exceeds any private
  // cache, the regime the reordering is actually for.
  static const SiteLocalityCase c = MakeSiteLocalityCase(5000);
  RunSiteLocality(state, c);
}

}  // namespace

BENCHMARK(BM_PageRankPower)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankPowerThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankGaussSeidel)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankAdaptive)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankExtrapolated)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankHighDamping)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OpicSweeps)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankWarmStart)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankSiteLocality)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_PageRankSiteLocalityXL)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

// Shared BenchMain handles --threads= and the BENCH_pagerank.json
// output; --order=identity|degree|bfs and --partition=node|edge steer
// the site-locality benchmark and are stripped here.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--order=", 0) == 0) {
      g_order = qrank::ParseNodeOrdering(a.substr(8)).value();
      continue;
    }
    if (a.rfind("--partition=", 0) == 0) {
      g_partition = a.substr(12) == "node"
                        ? qrank::SweepPartition::kNodeBalanced
                        : qrank::SweepPartition::kEdgeBalanced;
      continue;
    }
    args.push_back(argv[i]);
  }
  return qrank_bench::BenchMain(static_cast<int>(args.size()), args.data(),
                                "pagerank");
}
