// Ablation: fixed-window Equation 1 vs the Section 9.1 adaptive-window
// estimator, on a simulated crawl with many snapshots.
//
// The paper: "for low-PageRank pages, we may want to compute the
// PageRank increase over a longer period than high-PageRank pages in
// order to reduce the impact of noise." This bench takes 9 observation
// snapshots plus a future one, runs (a) the fixed short window (latest
// 2 observations), (b) the fixed long window (all 9), and (c) the
// adaptive window, and reports future-prediction error split by
// PageRank tier — low-PageRank pages are where the adaptive window
// should pay off.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/stats.h"
#include "common/table_writer.h"
#include "core/adaptive_window_estimator.h"
#include "core/snapshot_series.h"
#include "sim/web_simulator.h"

namespace {

struct TierErrors {
  double low_pr = 0.0;   // bottom-half PageRank pages
  double high_pr = 0.0;  // top-half
  double all = 0.0;
};

TierErrors MeasureErrors(const std::vector<double>& estimate,
                         const std::vector<qrank::PageTrend>& trend,
                         const std::vector<double>& current,
                         const std::vector<double>& future,
                         double median_pr) {
  qrank::RunningStat low, high, all;
  for (size_t p = 0; p < estimate.size(); ++p) {
    if (trend[p] == qrank::PageTrend::kStable) continue;
    if (!(future[p] > 0.0)) continue;
    double err = std::fabs((future[p] - estimate[p]) / future[p]);
    all.Add(err);
    (current[p] < median_pr ? low : high).Add(err);
  }
  return {low.mean(), high.mean(), all.mean()};
}

}  // namespace

int main() {
  // Simulate and take 9 closely spaced observations + a future snapshot;
  // close spacing makes per-interval Poisson noise significant, which is
  // the regime Section 9.1 worries about.
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1000;
  sim_options.seed = 1234;
  sim_options.page_birth_rate = 30.0;
  sim_options.visit_rate_factor = 2.0;
  sim_options.forget_rate = 0.08;
  auto sim = qrank::WebSimulator::Create(sim_options);
  if (!sim.ok()) return EXIT_FAILURE;

  qrank::SnapshotSeries series;
  std::vector<double> times;
  for (double t = 16.0; t <= 24.01; t += 1.0) times.push_back(t);
  times.push_back(32.0);  // future
  for (double t : times) {
    if (!sim->AdvanceTo(t).ok()) return EXIT_FAILURE;
    auto g = sim->Snapshot();
    if (!g.ok() || !series.AddSnapshot(t, std::move(g).value()).ok()) {
      return EXIT_FAILURE;
    }
  }
  qrank::PageRankOptions pr;
  pr.scale = qrank::ScaleConvention::kTotalMassN;
  if (!series.ComputePageRanks(pr, /*warm_start=*/true).ok()) {
    return EXIT_FAILURE;
  }

  const size_t num_obs = times.size() - 1;
  std::vector<std::vector<double>> obs;
  for (size_t i = 0; i < num_obs; ++i) obs.push_back(series.pagerank(i));
  const std::vector<double>& current = series.pagerank(num_obs - 1);
  const std::vector<double>& future = series.pagerank(num_obs);
  double median_pr = qrank::Quantile(current, 0.5).value();

  auto run_config = [&](uint32_t min_w, uint32_t max_w) {
    qrank::AdaptiveWindowOptions o;
    o.min_window = min_w;
    o.max_window = max_w;
    return qrank::EstimateQualityAdaptiveWindow(obs, o);
  };
  auto fixed_short = run_config(1, 1);
  auto fixed_long = run_config(8, 8);
  auto adaptive = run_config(1, 8);
  if (!fixed_short.ok() || !fixed_long.ok() || !adaptive.ok()) {
    return EXIT_FAILURE;
  }

  std::printf("=== Ablation: adaptive window (Section 9.1) ===\n");
  std::printf("%zu observation snapshots 1 time unit apart; future at "
              "t=32; errors vs future PageRank, split at the median "
              "current PageRank\n\n",
              num_obs);

  qrank::TableWriter table({"estimator window", "err (low-PR pages)",
                            "err (high-PR pages)", "err (all)"});
  auto add = [&](const char* name, const qrank::AdaptiveWindowEstimate& est) {
    TierErrors errs = MeasureErrors(est.base.quality, est.base.trend,
                                    current, future, median_pr);
    table.AddRow({name, qrank::TableWriter::FormatDouble(errs.low_pr, 4),
                  qrank::TableWriter::FormatDouble(errs.high_pr, 4),
                  qrank::TableWriter::FormatDouble(errs.all, 4)});
    return errs;
  };
  TierErrors short_errs = add("fixed short (1 gap)", *fixed_short);
  add("fixed long (8 gaps)", *fixed_long);
  TierErrors adaptive_errs = add("adaptive (1..8 by PR)", *adaptive);
  table.RenderAscii(std::cout);

  if (adaptive_errs.low_pr <= short_errs.low_pr) {
    std::printf("\nPASS: the adaptive window reduces low-PageRank-page "
                "error vs the short fixed window (%.4f vs %.4f), as "
                "Section 9.1 anticipates\n",
                adaptive_errs.low_pr, short_errs.low_pr);
    return EXIT_SUCCESS;
  }
  std::printf("\nFAIL: adaptive window did not help low-PageRank pages\n");
  return EXIT_FAILURE;
}
