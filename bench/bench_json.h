// Shared main + machine-readable output for the bench_perf_* binaries.
//
// Every perf bench links this header and calls qrank_bench::BenchMain,
// which (a) strips the qrank-specific flags --threads=N (process-wide
// default executor count) and --bench_json=PATH before handing the rest
// to google-benchmark, (b) runs the suite through a collecting console
// reporter, and (c) writes BENCH_<suite>.json — one row per benchmark
// with adjusted times and flag-resolved counters — so CI can archive
// the numbers and gate on them instead of scraping console text.
//
// Counter convention: counters are recorded exactly as google-benchmark
// finalizes them (flags like kIsRate are already applied by the time a
// Run reaches the reporter), so the JSON always matches the console
// output. Benchmarks that want "edges/s" to mean wall-clock machine
// throughput opt in with UseRealTime(), as the perf suites here do.

#ifndef QRANK_BENCH_BENCH_JSON_H_
#define QRANK_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_for.h"
#include "common/simd.h"

namespace qrank_bench {

/// Host provenance stamped into every BENCH_*.json: perf numbers are
/// meaningless without the machine they came from, and the SIMD kernel
/// gates in particular need to know which ISA the run dispatched to.
struct HostContext {
  std::string cpu_model;      // "model name" from /proc/cpuinfo, "" unknown
  std::string simd_features;  // e.g. "avx2+avx512f+avx512vl", "" scalar-only
  std::string simd_level;     // dispatch level the kernels will pick
  int threads = 1;            // process-wide default executor width
};

inline HostContext CollectHostContext() {
  HostContext host;
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) host.cpu_model = line.substr(start);
      }
      break;
    }
  }
  host.simd_features = qrank::SimdFeatureString();
  host.simd_level = qrank::SimdLevelName(qrank::DetectSimdLevel());
  host.threads = qrank::DefaultThreads();
  return host;
}

struct BenchRow {
  std::string name;
  double real_ms = 0.0;  // adjusted real time per iteration
  double cpu_ms = 0.0;   // adjusted cpu time per iteration
  int64_t iterations = 0;
  std::map<std::string, double> counters;  // as finalized by google-benchmark

  /// Counter lookup with a default (missing counters read as 0.0).
  double Counter(const std::string& key) const {
    auto it = counters.find(key);
    return it == counters.end() ? 0.0 : it->second;
  }
};

/// Console reporter that additionally collects one BenchRow per
/// RT_Iteration run (aggregates and errored runs are skipped).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchRow row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.real_ms = 1e3 * run.real_accumulated_time / iters;
      row.cpu_ms = 1e3 * run.cpu_accumulated_time / iters;
      for (const auto& [key, c] : run.counters) {
        // Counter flags (kIsRate etc.) are already applied by the
        // benchmark runner before the Run reaches any reporter; copying
        // the value verbatim keeps the JSON identical to the console.
        row.counters[key] = c.value;
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<BenchRow>& rows() const { return rows_; }

 private:
  std::vector<BenchRow> rows_;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

inline bool WriteBenchJson(const std::string& path, const std::string& suite,
                           const std::vector<BenchRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const HostContext host = CollectHostContext();
  std::fprintf(f,
               "{\n  \"suite\": \"%s\",\n  \"host\": {\"cpu_model\": \"%s\", "
               "\"simd_features\": \"%s\", \"simd_level\": \"%s\", "
               "\"threads\": %d},\n  \"benchmarks\": [",
               JsonEscape(suite).c_str(), JsonEscape(host.cpu_model).c_str(),
               JsonEscape(host.simd_features).c_str(),
               JsonEscape(host.simd_level).c_str(), host.threads);
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"real_ms\": %.6g, "
                 "\"cpu_ms\": %.6g, \"iterations\": %lld, \"counters\": {",
                 i == 0 ? "" : ",", JsonEscape(r.name).c_str(), r.real_ms,
                 r.cpu_ms, static_cast<long long>(r.iterations));
    size_t k = 0;
    for (const auto& [key, value] : r.counters) {
      std::fprintf(f, "%s\"%s\": %.6g", k++ == 0 ? "" : ", ",
                   JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

/// Shared main body. `suite` names the output file (BENCH_<suite>.json,
/// overridable with --bench_json=PATH; --bench_json= empty disables).
/// `after` (optional) sees the collected rows once the suite finishes
/// and returns the process exit code — the hook CI regression gates
/// hang off.
inline int BenchMain(
    int argc, char** argv, const std::string& suite,
    const std::function<int(const std::vector<BenchRow>&)>& after = {}) {
  std::string json_path = "BENCH_" + suite + ".json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--threads=", 0) == 0) {
      qrank::SetDefaultThreads(std::atoi(a.c_str() + 10));
      continue;
    }
    if (a.rfind("--bench_json=", 0) == 0) {
      json_path = a.substr(13);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !WriteBenchJson(json_path, suite, reporter.rows())) {
    return 1;
  }
  return after ? after(reporter.rows()) : 0;
}

}  // namespace qrank_bench

#endif  // QRANK_BENCH_BENCH_JSON_H_
