// Ground-truth extension (impossible in the paper, possible in
// simulation): rank pages by (a) the paper's quality estimate, (b)
// current PageRank, (c) in-degree, and (d) the traffic-based estimator
// of Section 9.1, and score each against the *latent true quality* the
// simulator assigned to every page.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "core/evaluation.h"
#include "core/experiment.h"
#include "core/traffic_estimator.h"
#include "rank/baselines.h"

int main() {
  // Run the standard crawl experiment but keep the simulator so we can
  // also extract traffic traces: re-run the pipeline manually.
  qrank::CrawlExperimentOptions options;
  options.simulator.seed = 404;

  qrank::Result<qrank::WebSimulator> sim_result =
      qrank::WebSimulator::Create(options.simulator);
  if (!sim_result.ok()) {
    std::fprintf(stderr, "%s\n", sim_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  qrank::WebSimulator& sim = *sim_result;

  qrank::SnapshotSeries series;
  std::vector<qrank::TrafficSnapshot> traffic;
  for (double t : options.snapshot_times) {
    if (!sim.AdvanceTo(t).ok()) return EXIT_FAILURE;
    auto snapshot = sim.Snapshot();
    if (!snapshot.ok() ||
        !series.AddSnapshot(t, std::move(snapshot).value()).ok()) {
      return EXIT_FAILURE;
    }
    qrank::TrafficSnapshot ts;
    ts.time = t;
    for (qrank::NodeId p = 0; p < sim.num_pages(); ++p) {
      ts.cumulative_visits.push_back(sim.page(p).visits);
    }
    traffic.push_back(std::move(ts));
  }
  if (!series.ComputePageRanks(options.pagerank).ok()) return EXIT_FAILURE;

  const qrank::NodeId common = series.CommonNodeCount();
  auto estimate = qrank::EstimateQuality(series, 3, options.estimator);
  if (!estimate.ok()) return EXIT_FAILURE;

  // Traffic-based estimate over the observation snapshots (common pages).
  for (auto& ts : traffic) ts.cumulative_visits.resize(common);
  qrank::TrafficEstimatorOptions traffic_options;
  traffic_options.visit_rate_normalization =
      options.simulator.visit_rate_factor * options.simulator.num_users;
  std::vector<qrank::TrafficSnapshot> obs_traffic(traffic.begin(),
                                                  traffic.begin() + 3);
  auto traffic_estimate =
      qrank::EstimateQualityFromTraffic(obs_traffic, traffic_options);
  if (!traffic_estimate.ok()) {
    std::fprintf(stderr, "traffic estimator: %s\n",
                 traffic_estimate.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::vector<double> truth(common);
  for (qrank::NodeId p = 0; p < common; ++p) truth[p] = sim.TrueQuality(p);
  std::vector<double> indegree =
      qrank::InDegreeScores(series.common_graph(2));
  const std::vector<double>& current_pr = series.pagerank(2);

  const uint64_t k = 100;
  auto score = [&](const std::vector<double>& scores, const char* name,
                   qrank::TableWriter* table) {
    auto eval = qrank::EvaluateAgainstTruth(scores, current_pr, truth, k);
    if (!eval.ok()) return;
    table->AddRow(
        {name,
         qrank::TableWriter::FormatDouble(eval->spearman_quality_estimate, 4),
         qrank::TableWriter::FormatDouble(
             eval->precision_at_k_quality_estimate, 3)});
  };

  std::printf("=== Ranking metrics vs latent true quality (%u pages) ===\n\n",
              common);
  qrank::TableWriter table({"metric", "Spearman vs truth", "precision@100"});
  score(estimate->quality, "quality estimator Q(p)", &table);
  score(current_pr, "current PageRank PR(t3)", &table);
  score(indegree, "in-degree (link count)", &table);
  score(traffic_estimate->quality, "traffic-based Q(p) [Sec 9.1]", &table);
  table.RenderAscii(std::cout);

  std::printf("\nthe link-based and traffic-based estimators should agree "
              "closely (Proposition 1 equates visits and popularity)\n");
  return EXIT_SUCCESS;
}
