// Extension experiment: the rich-get-richer feedback loop of Section 1
// and the paper's closing claim ("our metric can identify these
// high-quality pages much earlier than existing metrics and shorten the
// time it takes for new pages to get noticed"), made quantitative.
//
// A search engine captures 80% of visit traffic and ranks by one of
// several policies. A cohort of high-quality newcomer pages (Q = 0.9)
// is injected into a mature web; we measure
//   * attention inequality (Gini of per-page visits, share of the top
//     1% of pages), and
//   * how long newcomers take to get noticed (awareness >= 10% of
//     users), mean over the cohort, censored at the horizon.
//
// Expected shape: PageRank-ranked search concentrates attention hardest
// and discovers newcomers slowest; the paper's quality estimator
// discovers them markedly earlier at similar inequality; the
// true-quality oracle bounds what any estimator could do.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "core/bias_metrics.h"
#include "sim/web_simulator.h"

namespace {

struct PolicyOutcome {
  double gini = 0.0;
  double top1_share = 0.0;
  double mean_discovery_latency = 0.0;
  double discovered_fraction = 0.0;
};

constexpr double kMatureTime = 8.0;
constexpr double kHorizon = 22.0;
constexpr uint32_t kCohortSize = 12;
constexpr double kNewcomerQuality = 0.9;

qrank::Result<PolicyOutcome> RunPolicy(qrank::RankingPolicy policy) {
  qrank::WebSimulatorOptions o;
  o.num_users = 800;
  o.seed = 555;
  o.visit_rate_factor = 2.0;
  o.search.policy = policy;
  o.search.search_traffic_fraction = 0.8;
  o.search.results_per_query = 40;
  o.search.position_bias = 1.2;
  o.search.rerank_period = 1.0;

  QRANK_ASSIGN_OR_RETURN(qrank::WebSimulator sim,
                         qrank::WebSimulator::Create(o));
  QRANK_RETURN_NOT_OK(sim.AdvanceTo(kMatureTime));

  // Inject newcomers, two per time unit.
  qrank::DiscoveryTracker tracker(/*threshold=*/0.1);
  double t = kMatureTime;
  for (uint32_t i = 0; i < kCohortSize; i += 2) {
    QRANK_RETURN_NOT_OK(sim.AdvanceTo(t));
    for (int j = 0; j < 2; ++j) {
      QRANK_ASSIGN_OR_RETURN(qrank::NodeId page,
                             sim.AddPageWithQuality(kNewcomerQuality));
      tracker.Watch(page, t);
    }
    t += 1.0;
  }

  // Observe awareness on a fine grid until the horizon.
  for (; t <= kHorizon; t += 0.5) {
    QRANK_RETURN_NOT_OK(sim.AdvanceTo(t));
    std::vector<double> awareness(sim.num_pages());
    for (qrank::NodeId p = 0; p < sim.num_pages(); ++p) {
      awareness[p] = sim.TrueAwareness(p);
    }
    tracker.Observe(t, awareness);
  }

  PolicyOutcome outcome;
  std::vector<double> visits;
  for (qrank::NodeId p = 0; p < sim.num_pages(); ++p) {
    visits.push_back(static_cast<double>(sim.page(p).visits));
  }
  QRANK_ASSIGN_OR_RETURN(outcome.gini, qrank::GiniCoefficient(visits));
  size_t top1 = std::max<size_t>(1, visits.size() / 100);
  QRANK_ASSIGN_OR_RETURN(outcome.top1_share,
                         qrank::TopShare(visits, top1));
  QRANK_ASSIGN_OR_RETURN(
      outcome.mean_discovery_latency,
      tracker.MeanLatency(/*censored_latency=*/kHorizon - kMatureTime));
  outcome.discovered_fraction = tracker.DiscoveredFraction();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Rich-get-richer under search mediation ===\n");
  std::printf("80%% of traffic search-mediated; cohort of %u newcomers "
              "with Q=%.1f injected at t=%.0f; discovery threshold: 10%% "
              "user awareness\n\n",
              kCohortSize, kNewcomerQuality, kMatureTime);

  const qrank::RankingPolicy policies[] = {
      qrank::RankingPolicy::kNone, qrank::RankingPolicy::kRandom,
      qrank::RankingPolicy::kInDegree, qrank::RankingPolicy::kPageRank,
      qrank::RankingPolicy::kQualityEstimate,
      qrank::RankingPolicy::kTrueQuality};

  qrank::TableWriter table({"ranking policy", "visit Gini", "top-1% share",
                            "mean discovery latency", "discovered %"});
  double latency_pagerank = -1.0, latency_quality = -1.0;
  double gini_none = -1.0, gini_pagerank = -1.0;
  for (qrank::RankingPolicy policy : policies) {
    qrank::Result<PolicyOutcome> outcome = RunPolicy(policy);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", RankingPolicyName(policy),
                   outcome.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    table.AddRow({qrank::RankingPolicyName(policy),
                  qrank::TableWriter::FormatDouble(outcome->gini, 3),
                  qrank::TableWriter::FormatDouble(outcome->top1_share, 3),
                  qrank::TableWriter::FormatDouble(
                      outcome->mean_discovery_latency, 2),
                  qrank::TableWriter::FormatDouble(
                      outcome->discovered_fraction * 100.0, 1)});
    if (policy == qrank::RankingPolicy::kPageRank) {
      latency_pagerank = outcome->mean_discovery_latency;
      gini_pagerank = outcome->gini;
    }
    if (policy == qrank::RankingPolicy::kQualityEstimate) {
      latency_quality = outcome->mean_discovery_latency;
    }
    if (policy == qrank::RankingPolicy::kNone) gini_none = outcome->gini;
  }
  table.RenderAscii(std::cout);

  bool ok = true;
  if (!(gini_pagerank > gini_none)) {
    std::printf("\nFAIL: PageRank-mediated search did not concentrate "
                "attention beyond organic browsing\n");
    ok = false;
  }
  if (!(latency_quality < latency_pagerank)) {
    std::printf("\nFAIL: quality ranking did not shorten newcomer "
                "discovery time\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nPASS: popularity-ranked search amplifies the "
                "rich-get-richer bias (Section 1); ranking by the "
                "paper's quality estimator gets high-quality newcomers "
                "noticed %.1fx sooner (Section 9 claim)\n",
                latency_pagerank / latency_quality);
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
