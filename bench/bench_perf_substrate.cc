// Performance of the substrate layers (google-benchmark): CSR
// construction, transpose, dynamic-graph snapshot extraction, simulator
// stepping, alias-table sampling, and graph generators.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "sim/web_simulator.h"

namespace {

void BM_CsrBuild(benchmark::State& state) {
  qrank::Rng rng(7);
  qrank::EdgeList edges =
      qrank::GenerateBarabasiAlbert(
          static_cast<qrank::NodeId>(state.range(0)), 8, &rng)
          .value();
  for (auto _ : state) {
    auto g = qrank::CsrGraph::FromEdgeList(edges);
    benchmark::DoNotOptimize(g.value().num_edges());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(edges.num_edges()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_CsrTranspose(benchmark::State& state) {
  qrank::Rng rng(7);
  qrank::CsrGraph g =
      qrank::CsrGraph::FromEdgeList(
          qrank::GenerateBarabasiAlbert(
              static_cast<qrank::NodeId>(state.range(0)), 8, &rng)
              .value())
          .value();
  for (auto _ : state) {
    qrank::CsrGraph t = g.Transpose();
    benchmark::DoNotOptimize(t.num_edges());
    // Copy with a fresh cache each round: measure the transpose itself.
    state.PauseTiming();
    g = qrank::CsrGraph::FromEdges(
            g.num_nodes(),
            [&] {
              std::vector<qrank::Edge> e;
              for (qrank::NodeId u = 0; u < g.num_nodes(); ++u) {
                for (qrank::NodeId v : g.OutNeighbors(u)) {
                  e.push_back({u, v});
                }
              }
              return e;
            }())
            .value();
    state.ResumeTiming();
  }
}

void BM_DynamicSnapshot(benchmark::State& state) {
  // A dynamic graph with state.range(0) live edges; extract a CSR.
  qrank::DynamicGraph dyn;
  const qrank::NodeId n = 4096;
  dyn.AddNodes(n, 0.0);
  qrank::Rng rng(13);
  int64_t added = 0;
  while (added < state.range(0)) {
    auto u = static_cast<qrank::NodeId>(rng.UniformUint64(n));
    auto v = static_cast<qrank::NodeId>(rng.UniformUint64(n));
    if (u != v && dyn.AddEdge(u, v, 1.0).ok()) ++added;
  }
  for (auto _ : state) {
    auto g = dyn.SnapshotAt(2.0);
    benchmark::DoNotOptimize(g.value().num_edges());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(added),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SimulatorStep(benchmark::State& state) {
  qrank::WebSimulatorOptions o;
  o.num_users = static_cast<uint32_t>(state.range(0));
  o.seed = 3;
  o.page_birth_rate = 10.0;
  qrank::WebSimulator sim = qrank::WebSimulator::Create(o).value();
  // Warm to mid-expansion so the step cost is representative.
  (void)sim.AdvanceTo(10.0);
  uint64_t visits_before = sim.total_visits();
  for (auto _ : state) {
    sim.Step();
  }
  state.counters["visits/s"] = benchmark::Counter(
      static_cast<double>(sim.total_visits() - visits_before),
      benchmark::Counter::kIsRate);
}

void BM_AliasTableSample(benchmark::State& state) {
  qrank::Rng rng(17);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.Pareto(1.0, 1.5);
  qrank::AliasTable table(weights);
  qrank::Rng sampler(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&sampler));
  }
}

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  for (auto _ : state) {
    qrank::Rng rng(23);
    auto e = qrank::GenerateBarabasiAlbert(
        static_cast<qrank::NodeId>(state.range(0)), 8, &rng);
    benchmark::DoNotOptimize(e.value().num_edges());
  }
}

void BM_GenerateErdosRenyi(benchmark::State& state) {
  for (auto _ : state) {
    qrank::Rng rng(29);
    auto e = qrank::GenerateErdosRenyi(
        static_cast<qrank::NodeId>(state.range(0)), 8.0 / state.range(0),
        &rng);
    benchmark::DoNotOptimize(e.value().num_edges());
  }
}

void BM_ParallelReduceThreads(benchmark::State& state) {
  // The raw substrate primitive: tree-reduce 2^22 doubles. The result is
  // bit-identical across the sweep (fixed block structure).
  std::vector<double> values(size_t{1} << 22);
  qrank::Rng rng(31);
  for (double& v : values) v = rng.UniformDouble();
  qrank::ParallelOptions par;
  par.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double sum = qrank::ParallelReduce(
        values.size(),
        [&](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        par);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_CsrTransposeThreads(benchmark::State& state) {
  // Transpose of a ~2M-edge graph under the thread sweep; a fresh graph
  // per round so the cached transpose never short-circuits the work.
  qrank::Rng rng(7);
  qrank::EdgeList edges =
      qrank::GenerateBarabasiAlbert(1 << 18, 8, &rng).value();
  qrank::SetDefaultThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    qrank::CsrGraph g = qrank::CsrGraph::FromEdgeList(edges).value();
    state.ResumeTiming();
    g.BuildTranspose();
    benchmark::DoNotOptimize(g.InDegree(0));
  }
  qrank::SetDefaultThreads(0);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(edges.num_edges()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SimulatorStepThreads(benchmark::State& state) {
  // One simulator step with the parallel visit-sampling pass; the
  // equivalence test proves identical trajectories across this sweep.
  qrank::WebSimulatorOptions o;
  o.num_users = 20000;
  o.seed = 3;
  o.page_birth_rate = 10.0;
  o.num_threads = static_cast<int>(state.range(0));
  qrank::WebSimulator sim = qrank::WebSimulator::Create(o).value();
  (void)sim.AdvanceTo(10.0);
  uint64_t visits_before = sim.total_visits();
  for (auto _ : state) {
    sim.Step();
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["visits/s"] = benchmark::Counter(
      static_cast<double>(sim.total_visits() - visits_before),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_CsrBuild)->Arg(4096)->Arg(32768)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CsrTranspose)->Arg(4096)->Arg(32768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DynamicSnapshot)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorStep)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(1000000);
BENCHMARK(BM_GenerateBarabasiAlbert)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateErdosRenyi)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelReduceThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_CsrTransposeThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SimulatorStepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Shared BenchMain: --threads= handling plus BENCH_substrate.json output.
int main(int argc, char** argv) {
  return qrank_bench::BenchMain(argc, argv, "substrate");
}
