// Cache-aware reordering benchmarks (google-benchmark).
//
// Sweeps {ordering} x {threads} x {generator} over the fused PageRank
// kernel, plus the node- vs edge-balanced partition comparison and the
// cost of building the orderings themselves. Inputs are relabeled into
// a fixed pseudorandom "crawl order" first (generators emit near-ideal
// layouts; real crawls do not — see MakeCrawlOrder), so the edges/s
// deltas here are the locality win the orderings actually deliver on
// crawl-shaped inputs.
//
// With --check_reorder_regression the process exits non-zero when the
// best bfs-ordered throughput falls below the best identity-ordered
// throughput — the CI perf-smoke gate. Run it with a real
// --benchmark_min_time so the comparison is not single-iteration noise.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "rank/pagerank.h"

namespace {

using qrank::CsrGraph;
using qrank::NodeId;
using qrank::NodeOrdering;

constexpr uint32_t kSweepIterations = 20;

// Fixed pseudorandom relabeling modeling crawl-discovery ids.
CsrGraph MakeCrawlOrder(CsrGraph g, uint64_t seed) {
  qrank::Rng rng(seed);
  std::vector<NodeId> scramble(g.num_nodes());
  std::iota(scramble.begin(), scramble.end(), NodeId{0});
  for (NodeId i = g.num_nodes(); i > 1; --i) {
    std::swap(scramble[i - 1], scramble[rng.UniformUint64(i)]);
  }
  return g.Permute(scramble).value();
}

// Site-clustered web (num_sites x 200 pages, ~13 links/page), crawl
// order.
CsrGraph MakeSiteGraph(NodeId num_sites) {
  qrank::Rng rng(99);
  return MakeCrawlOrder(
      CsrGraph::FromEdgeList(
          qrank::GenerateSiteClustered(num_sites, 200, 12, 6, &rng).value())
          .value(),
      17);
}

// 131k pages: score arrays fit mid-level cache on big-LLC hosts; the
// ordering win here is the lower bound of the effect.
const CsrGraph& SiteGraph() {
  static const CsrGraph g = MakeSiteGraph(655);
  return g;
}

// 1M pages: the gathered out-share array (8 MB) exceeds any private
// cache — the regime reordering is actually for, and the gate's signal.
const CsrGraph& SiteXlGraph() {
  static const CsrGraph g = MakeSiteGraph(5000);
  return g;
}

// Hub-heavy Barabasi-Albert graph (2^17 nodes, out-degree 8), crawl
// order; the partition comparison's worst case for node blocks.
const CsrGraph& BaGraph() {
  static const CsrGraph g = [] {
    qrank::Rng rng(1234);
    return MakeCrawlOrder(
        CsrGraph::FromEdgeList(
            qrank::GenerateBarabasiAlbert(1 << 17, 8, &rng).value())
            .value(),
        18);
  }();
  return g;
}

struct Gen {
  const char* name;
  const CsrGraph& (*get)();
};

// Graphs are built and reordered lazily on first use (and cached for
// the rest of the suite), so filtered runs only pay for the inputs
// they actually touch; the build happens outside the timed loop.
const CsrGraph& OrderedGraph(const Gen& gen, NodeOrdering order) {
  static auto* cache = new std::map<std::string, CsrGraph>();
  const std::string key =
      std::string(gen.name) + "/" + NodeOrderingName(order);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache
             ->emplace(key, qrank::ReorderGraph(gen.get(), order).value().graph)
             .first;
  }
  return it->second;
}

qrank::PageRankOptions FixedWorkOptions(int threads,
                                        qrank::SweepPartition partition) {
  qrank::PageRankOptions o;
  o.max_iterations = kSweepIterations;
  o.tolerance = 1e-300;  // never met: fixed work per run
  o.num_threads = threads;
  o.partition = partition;
  return o;
}

void RunFixedSweeps(benchmark::State& state, const CsrGraph& g,
                    const qrank::PageRankOptions& o) {
  g.BuildTranspose();  // outside the timed region
  for (auto _ : state) {
    auto r = qrank::ComputePageRank(g, o);
    benchmark::DoNotOptimize(r->scores.data());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.num_edges()) * kSweepIterations,
      benchmark::Counter::kIsIterationInvariantRate);
}

void RegisterAll() {
  const auto ms = [](benchmark::internal::Benchmark* b) {
    b->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
  };

  // Ordering construction cost (permutation build + graph relabel).
  for (NodeOrdering order :
       {NodeOrdering::kDegreeDescending, NodeOrdering::kBfsLocality}) {
    std::string name =
        std::string("BM_BuildOrdering/site/order:") + NodeOrderingName(order);
    ms(benchmark::RegisterBenchmark(
        name.c_str(), [order](benchmark::State& state) {
          const CsrGraph& g = SiteGraph();
          for (auto _ : state) {
            auto r = qrank::ReorderGraph(g, order);
            benchmark::DoNotOptimize(r->graph.num_edges());
          }
          state.counters["edges/s"] = benchmark::Counter(
              static_cast<double>(g.num_edges()),
              benchmark::Counter::kIsIterationInvariantRate);
        }));
  }

  // {generator} x {ordering} x {threads}, edge-balanced partition.
  const auto sweep = [&ms](const Gen& gen,
                           std::initializer_list<NodeOrdering> orders,
                           std::initializer_list<int> thread_counts) {
    for (NodeOrdering order : orders) {
      for (int threads : thread_counts) {
        std::string name = std::string("BM_PageRankOrdered/") + gen.name +
                           "/order:" + NodeOrderingName(order) +
                           "/threads:" + std::to_string(threads);
        ms(benchmark::RegisterBenchmark(
            name.c_str(), [gen, order, threads](benchmark::State& state) {
              RunFixedSweeps(
                  state, OrderedGraph(gen, order),
                  FixedWorkOptions(threads,
                                   qrank::SweepPartition::kEdgeBalanced));
            }));
      }
    }
  };
  sweep(Gen{"site", SiteGraph},
        {NodeOrdering::kIdentity, NodeOrdering::kDegreeDescending,
         NodeOrdering::kBfsLocality},
        {1, 2, 4, 8});
  sweep(Gen{"ba", BaGraph},
        {NodeOrdering::kIdentity, NodeOrdering::kDegreeDescending,
         NodeOrdering::kBfsLocality},
        {1, 2, 4, 8});
  sweep(Gen{"sitexl", SiteXlGraph},
        {NodeOrdering::kIdentity, NodeOrdering::kBfsLocality}, {1, 8});

  // Node- vs edge-balanced partition on the hub-heavy graph (identity
  // ordering, so only the work split differs).
  for (qrank::SweepPartition partition :
       {qrank::SweepPartition::kNodeBalanced,
        qrank::SweepPartition::kEdgeBalanced}) {
    const char* pname =
        partition == qrank::SweepPartition::kNodeBalanced ? "node" : "edge";
    for (int threads : {1, 2, 4, 8}) {
      std::string name = std::string("BM_PageRankPartition/ba/partition:") +
                         pname + "/threads:" + std::to_string(threads);
      ms(benchmark::RegisterBenchmark(
          name.c_str(), [partition, threads](benchmark::State& state) {
            RunFixedSweeps(state, BaGraph(),
                           FixedWorkOptions(threads, partition));
          }));
    }
  }
}

// CI gate: for every site-shaped generator in the run, the best
// bfs-ordered edges/s must not fall below the best identity-ordered
// edges/s. (The ba generator is excluded: preferential-attachment
// graphs have no community structure for a BFS ordering to recover, so
// its ratio hovers around 1.0 by construction.) CI filters the run to
// sitexl, where the expected margin is >2x.
int CheckReorderRegression(const std::vector<qrank_bench::BenchRow>& rows) {
  const auto best = [&rows](const std::string& gen, const std::string& tag) {
    double v = 0.0;
    for (const qrank_bench::BenchRow& r : rows) {
      if (r.name.find("BM_PageRankOrdered/" + gen + "/") !=
              std::string::npos &&
          r.name.find(tag) != std::string::npos) {
        v = std::max(v, r.Counter("edges/s"));
      }
    }
    return v;
  };
  int checked = 0;
  for (const char* gen : {"site", "sitexl"}) {
    const double identity = best(gen, "/order:identity/");
    const double bfs = best(gen, "/order:bfs/");
    if (identity <= 0.0 || bfs <= 0.0) continue;  // gen not in this run
    ++checked;
    std::printf("reorder gate [%s]: bfs %.4g edges/s vs identity %.4g "
                "(%.2fx)\n",
                gen, bfs, identity, bfs / identity);
    if (bfs < identity) {
      std::fprintf(stderr,
                   "reorder gate FAILED [%s]: bfs ordering is slower than "
                   "the identity labeling\n",
                   gen);
      return 1;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "reorder gate: no BM_PageRankOrdered site rows in this "
                 "run — nothing to check\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_gate = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--check_reorder_regression") {
      check_gate = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  RegisterAll();
  std::function<int(const std::vector<qrank_bench::BenchRow>&)> after;
  if (check_gate) after = CheckReorderRegression;
  return qrank_bench::BenchMain(static_cast<int>(args.size()), args.data(),
                                "reorder", after);
}
