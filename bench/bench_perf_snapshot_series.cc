// End-to-end performance of SnapshotSeries::ComputePageRanks across its
// three modes (google-benchmark).
//
// The workload is the ISSUE-2 acceptance scenario: a 10-snapshot series
// over a ~131k-node site-clustered graph (655 sites x 200 pages, the
// paper's crawl shape scaled up) with a constant node count and churn
// confined to a small pool of hot sites — the regime where consecutive
// crawls overlap almost entirely and the incremental path (delta CSR
// patching + warm-started frozen-set solves) should win. Counters export
// total iterations, node updates and, for the incremental mode, the max
// per-snapshot L1 distance to the from-scratch vectors, so both the
// >= 3x speedup claim and the exactness contract are visible in one
// table.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/snapshot_series.h"
#include "graph/generators.h"
#include "rank/pagerank.h"

namespace {

constexpr qrank::NodeId kNumSites = 655;
constexpr qrank::NodeId kPagesPerSite = 200;  // 131000 nodes total
constexpr uint32_t kIntraDegree = 8;  // ~10 links/page with ring + inter
constexpr uint32_t kInterLinks = 3;
constexpr int kSnapshots = 10;
constexpr int kHotSites = 24;       // churn stays inside this pool
constexpr int kChurnSites = 8;      // hot sites touched per snapshot
constexpr int kAddsPerSite = 40;
constexpr int kRemovesPerSite = 20;

// The pipeline contract tolerance, and the engine residual threshold the
// series is actually solved at. Residual stopping leaves a fixed-point
// error of residual / (1 - alpha * lambda_2), so two independently
// converged solves can sit several tolerances apart; the standard remedy
// is a safety margin — solve one decade below the contract — which puts
// that convergence noise under the contract level. maxL1 reports the
// per-snapshot distance to the from-scratch vectors and must stay below
// kContractTolerance.
constexpr double kContractTolerance = 1e-9;
constexpr double kSolveTolerance = 1e-10;

// Ten snapshots of the same 131k-page crawl: the ring + preferential
// base is immutable; per snapshot a few hot sites gain fresh intra-site
// links and lose some previously added ones (so deltas carry both added
// and removed edges). Ring backbones are never touched, so no page is
// ever dangling and the node count is constant.
std::vector<qrank::CsrGraph> BuildSnapshots() {
  qrank::Rng rng(20260805);
  qrank::EdgeList base =
      qrank::GenerateSiteClustered(kNumSites, kPagesPerSite, kIntraDegree,
                                   kInterLinks, &rng)
          .value();
  std::vector<qrank::Edge> base_edges = base.edges();
  std::vector<qrank::Edge> extras;  // churnable edges, by arrival order

  std::vector<qrank::CsrGraph> snapshots;
  snapshots.reserve(kSnapshots);
  for (int t = 0; t < kSnapshots; ++t) {
    if (t > 0) {
      for (int s = 0; s < kChurnSites; ++s) {
        const qrank::NodeId site =
            static_cast<qrank::NodeId>(rng.UniformUint64(kHotSites));
        const qrank::NodeId lo = site * kPagesPerSite;
        // Retire the oldest extras of this site.
        int removed = 0;
        for (auto it = extras.begin();
             it != extras.end() && removed < kRemovesPerSite;) {
          if (it->src >= lo && it->src < lo + kPagesPerSite) {
            it = extras.erase(it);
            ++removed;
          } else {
            ++it;
          }
        }
        for (int k = 0; k < kAddsPerSite; ++k) {
          qrank::NodeId u =
              lo + static_cast<qrank::NodeId>(rng.UniformUint64(kPagesPerSite));
          qrank::NodeId v =
              lo + static_cast<qrank::NodeId>(rng.UniformUint64(kPagesPerSite));
          if (u != v) extras.push_back({u, v});
        }
      }
    }
    std::vector<qrank::Edge> edges = base_edges;
    edges.insert(edges.end(), extras.begin(), extras.end());
    snapshots.push_back(
        qrank::CsrGraph::FromEdges(kNumSites * kPagesPerSite, edges).value());
  }
  return snapshots;
}

qrank::SnapshotSeries& SharedSeries() {
  static qrank::SnapshotSeries* series = [] {
    auto* s = new qrank::SnapshotSeries();
    std::vector<qrank::CsrGraph> snapshots = BuildSnapshots();
    for (int t = 0; t < kSnapshots; ++t) {
      qrank::Status st =
          s->AddSnapshot(static_cast<double>(t), std::move(snapshots[t]));
      (void)st;
    }
    return s;
  }();
  return *series;
}

qrank::SeriesComputeOptions ModeOptions(qrank::SeriesMode mode) {
  qrank::SeriesComputeOptions o;
  o.pagerank.tolerance = kSolveTolerance;
  o.pagerank.max_iterations = 1000;
  o.mode = mode;
  // Warm-started site-local deltas have short sub-budget drift chains,
  // so the incremental engine tolerates a sparser full-sweep cadence
  // than its cold-start-safe default of 8; the maxL1 column shows the
  // exactness contract still holds.
  o.full_sweep_period = 16;
  return o;
}

// From-scratch vectors at the same tolerance: the exactness reference.
const std::vector<std::vector<double>>& ScratchReference() {
  static const std::vector<std::vector<double>>* ref = [] {
    qrank::SnapshotSeries& s = SharedSeries();
    qrank::Status st =
        s.ComputePageRanks(ModeOptions(qrank::SeriesMode::kScratch));
    (void)st;
    auto* r = new std::vector<std::vector<double>>();
    for (int t = 0; t < kSnapshots; ++t) r->push_back(s.pagerank(t));
    return r;
  }();
  return *ref;
}

void ExportWorkCounters(benchmark::State& state,
                        const qrank::SnapshotSeries& s) {
  double iters = 0.0;
  double updates = 0.0;
  for (uint32_t it : s.iterations_per_snapshot()) iters += it;
  for (uint64_t u : s.node_updates_per_snapshot()) updates += u;
  state.counters["iters"] = iters;
  state.counters["node_upd"] = updates;
}

void RunMode(benchmark::State& state, qrank::SeriesMode mode, int threads) {
  qrank::SnapshotSeries& series = SharedSeries();
  const std::vector<std::vector<double>>& reference = ScratchReference();
  qrank::SeriesComputeOptions options = ModeOptions(mode);
  options.pagerank.num_threads = threads;
  for (auto _ : state) {
    auto status = series.ComputePageRanks(options);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(series.pagerank(kSnapshots - 1).data());
  }
  ExportWorkCounters(state, series);
  // Exactness contract: max per-snapshot L1 distance to the from-scratch
  // vectors, which must stay below kContractTolerance.
  double max_l1 = 0.0;
  for (int t = 0; t < kSnapshots; ++t) {
    const std::vector<double>& got = series.pagerank(t);
    double l1 = 0.0;
    for (size_t i = 0; i < got.size(); ++i) {
      l1 += std::fabs(got[i] - reference[t][i]);
    }
    max_l1 = std::max(max_l1, l1);
  }
  state.counters["maxL1"] = max_l1;
}

void BM_SnapshotSeriesScratch(benchmark::State& state) {
  RunMode(state, qrank::SeriesMode::kScratch, 0);
}

void BM_SnapshotSeriesWarmStart(benchmark::State& state) {
  RunMode(state, qrank::SeriesMode::kWarmStart, 0);
}

void BM_SnapshotSeriesIncremental(benchmark::State& state) {
  RunMode(state, qrank::SeriesMode::kIncremental, 0);
}

// Thread sweep for the incremental path; the parallel-equivalence suite
// proves the scores are bit-identical across this sweep.
void BM_SnapshotSeriesIncrementalThreads(benchmark::State& state) {
  RunMode(state, qrank::SeriesMode::kIncremental,
          static_cast<int>(state.range(0)));
  state.counters["threads"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_SnapshotSeriesScratch)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_SnapshotSeriesWarmStart)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_SnapshotSeriesIncremental)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_SnapshotSeriesIncrementalThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// Shared BenchMain: --threads= handling plus BENCH_snapshot_series.json output.
int main(int argc, char** argv) {
  return qrank_bench::BenchMain(argc, argv, "snapshot_series");
}
