// Regenerates Figure 3 of the paper: I(p,t) + P(p,t) is a flat line at
// the quality value (Theorem 2), for the same parameters as Figure 2
// (Q = 0.2, n = r = 1e8, P(p,0) = 1e-9).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "model/visitation_model.h"

int main() {
  qrank::VisitationParams params;
  params.quality = 0.2;
  params.num_users = 1e8;
  params.visit_rate = 1e8;
  params.initial_popularity = 1e-9;
  qrank::Result<qrank::VisitationModel> model =
      qrank::VisitationModel::Create(params);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf("=== Figure 3: I(p,t) + P(p,t) is constant at Q ===\n");
  std::printf("parameters: Q=0.2  n=1e8  r=1e8  P(p,0)=1e-9\n\n");

  qrank::TableWriter table({"t", "I(p,t)+P(p,t)", "deviation from Q"});
  double max_dev = 0.0;
  for (double t = 0.0; t <= 150.0; t += 10.0) {
    double sum = model->EstimatorSum(t);
    double dev = std::fabs(sum - 0.2);
    max_dev = std::max(max_dev, dev);
    table.AddRow({qrank::TableWriter::FormatDouble(t, 0),
                  qrank::TableWriter::FormatDouble(sum, 10),
                  qrank::TableWriter::FormatDouble(dev, 12)});
  }
  table.RenderAscii(std::cout);
  std::printf("\nmax |I+P - Q| over the grid: %.3e (Theorem 2: exactly 0)\n",
              max_dev);
  return max_dev < 1e-9 ? EXIT_SUCCESS : EXIT_FAILURE;
}
