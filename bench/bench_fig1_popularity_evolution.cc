// Regenerates Figure 1 of the paper: time evolution of page popularity
// P(p,t) under the user-visitation model with Q = 0.8, n = r = 1e8,
// P(p,0) = 1e-8 ("100 million Web users and only one user liked the page
// at its creation"), t in [0, 40].
//
// Expected shape: sigmoid with three stages — infant (~t < 15, near-zero
// popularity), expansion (~15..30, rapid growth), maturity (popularity
// stabilizes at the quality value 0.8).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "model/visitation_model.h"

int main() {
  qrank::VisitationParams params;
  params.quality = 0.8;
  params.num_users = 1e8;
  params.visit_rate = 1e8;
  params.initial_popularity = 1e-8;
  qrank::Result<qrank::VisitationModel> model =
      qrank::VisitationModel::Create(params);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf("=== Figure 1: time evolution of page popularity ===\n");
  std::printf("parameters: Q=0.8  n=1e8  r=1e8  P(p,0)=1e-8\n\n");

  qrank::TableWriter table({"t", "P(p,t)", "A(p,t)", "stage"});
  for (double t = 0.0; t <= 40.0; t += 2.0) {
    const char* stage = "";
    switch (model->StageAt(t)) {
      case qrank::LifeStage::kInfant:
        stage = "infant";
        break;
      case qrank::LifeStage::kExpansion:
        stage = "expansion";
        break;
      case qrank::LifeStage::kMaturity:
        stage = "maturity";
        break;
    }
    table.AddRow({qrank::TableWriter::FormatDouble(t, 0),
                  qrank::TableWriter::FormatDouble(model->Popularity(t), 6),
                  qrank::TableWriter::FormatDouble(model->Awareness(t), 6),
                  stage});
  }
  table.RenderAscii(std::cout);

  qrank::Result<double> t10 = model->TimeToReachFraction(0.1);
  qrank::Result<double> t90 = model->TimeToReachFraction(0.9);
  if (t10.ok() && t90.ok()) {
    std::printf(
        "\nstage boundaries: infant->expansion at t=%.1f, "
        "expansion->maturity at t=%.1f (paper: ~15 and ~30)\n",
        t10.value(), t90.value());
  }
  std::printf("eventual popularity: P(p,inf) = %.4f (= Q, Corollary 1)\n",
              model->Popularity(1e6));
  return EXIT_SUCCESS;
}
