// Ablation: crawl incompleteness vs estimator accuracy.
//
// The paper's snapshots are crawls ("we downloaded pages from each site
// until we could not reach any more pages … or the maximum of 200,000
// pages") — partial observations of the true Web. This bench crawls
// each simulated snapshot with a shrinking page budget (expressed as a
// fraction of the true page count) and measures how the Figure 5
// comparison degrades: at what coverage does the quality estimator's
// advantage over current PageRank survive?

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "core/evaluation.h"
#include "core/quality_estimator.h"
#include "core/snapshot_series.h"
#include "sim/crawler.h"
#include "sim/web_simulator.h"

namespace {

struct BudgetOutcome {
  double coverage = 0.0;  // crawled pages / true pages (averaged)
  uint64_t pages_evaluated = 0;
  double err_quality = 0.0;
  double err_pagerank = 0.0;
  double improvement = 0.0;
};

qrank::Result<BudgetOutcome> RunWithBudgetFraction(double fraction) {
  qrank::WebSimulatorOptions sim_options;
  sim_options.num_users = 1000;
  sim_options.seed = 31415;
  sim_options.page_birth_rate = 30.0;
  sim_options.visit_rate_factor = 2.0;
  sim_options.forget_rate = 0.08;
  QRANK_ASSIGN_OR_RETURN(qrank::WebSimulator sim,
                         qrank::WebSimulator::Create(sim_options));

  qrank::SnapshotSeries series;
  double coverage_sum = 0.0;
  const std::vector<double> times = {16.0, 20.0, 24.0, 32.0};
  for (double t : times) {
    QRANK_RETURN_NOT_OK(sim.AdvanceTo(t));
    QRANK_ASSIGN_OR_RETURN(qrank::CsrGraph truth, sim.Snapshot());

    // Seed the crawler with 20 popular home pages (stable seed list
    // across snapshots, like a crawler's site roots).
    std::vector<qrank::NodeId> seeds;
    for (qrank::NodeId p = 0; p < 20; ++p) seeds.push_back(p);
    qrank::CrawlerOptions crawl_options;
    crawl_options.page_budget = fraction >= 1.0
        ? 0
        : static_cast<uint64_t>(fraction *
                                static_cast<double>(truth.num_nodes()));
    QRANK_ASSIGN_OR_RETURN(qrank::CrawlResult crawl,
                           qrank::Crawl(truth, seeds, crawl_options));
    coverage_sum += static_cast<double>(crawl.pages_crawled) /
                    static_cast<double>(truth.num_nodes());
    QRANK_RETURN_NOT_OK(series.AddSnapshot(t, std::move(crawl.graph)));
  }

  qrank::PageRankOptions pr;
  pr.scale = qrank::ScaleConvention::kTotalMassN;
  QRANK_RETURN_NOT_OK(series.ComputePageRanks(pr, /*warm_start=*/true));
  QRANK_ASSIGN_OR_RETURN(qrank::QualityEstimate estimate,
                         qrank::EstimateQuality(series, 3));
  QRANK_ASSIGN_OR_RETURN(
      qrank::PredictionComparison cmp,
      qrank::CompareFuturePrediction(estimate, series.pagerank(2),
                                     series.pagerank(3)));

  BudgetOutcome outcome;
  outcome.coverage = coverage_sum / static_cast<double>(times.size());
  outcome.pages_evaluated = cmp.pages_evaluated;
  outcome.err_quality = cmp.quality.mean_error;
  outcome.err_pagerank = cmp.pagerank.mean_error;
  outcome.improvement = cmp.improvement_factor;
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Ablation: crawl budget vs estimator advantage ===\n");
  std::printf("each snapshot is a BFS crawl from 20 seed pages with a "
              "page budget; 100%% = full snapshot (the headline "
              "configuration)\n\n");

  qrank::TableWriter table({"budget (frac of web)", "actual coverage",
                            "pages eval", "err Q(p)", "err PR(t3)",
                            "improvement"});
  double improvement_full = 0.0, improvement_half = 0.0;
  for (double fraction : {1.0, 0.8, 0.6, 0.5, 0.4, 0.25}) {
    auto outcome = RunWithBudgetFraction(fraction);
    if (!outcome.ok()) {
      std::fprintf(stderr, "budget %.2f failed: %s\n", fraction,
                   outcome.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    table.AddNumericRow(
        {fraction, outcome->coverage,
         static_cast<double>(outcome->pages_evaluated),
         outcome->err_quality, outcome->err_pagerank,
         outcome->improvement},
        4);
    if (fraction == 1.0) improvement_full = outcome->improvement;
    if (fraction == 0.5) improvement_half = outcome->improvement;
  }
  table.RenderAscii(std::cout);

  if (improvement_full > 1.0 && improvement_half > 1.0) {
    std::printf("\nPASS: the estimator's advantage survives down to "
                "half-coverage crawls (full: %.2fx, half: %.2fx)\n",
                improvement_full, improvement_half);
    return EXIT_SUCCESS;
  }
  std::printf("\nNOTE: advantage lost under heavy crawl truncation "
              "(full: %.2fx, half: %.2fx) — crawl coverage matters\n",
              improvement_full, improvement_half);
  return EXIT_SUCCESS;  // informational either way
}
