// Ablation over the Equation 1 constant C (the weight of the relative
// PageRank increase). Footnote 6 of the paper: "The value 0.1 showed the
// best result out of all values that we tested. Small variations in the
// constant did not affect our result significantly."
//
// This bench sweeps C on a seed *different* from the headline bench
// (bench_fig5) so the chosen constant is not tuned on the reported run,
// then verifies that (a) the optimum is at or adjacent to C = 0.1 and
// (b) the curve is flat around it.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "core/experiment.h"

int main() {
  const std::vector<double> sweep = {0.0,  0.02, 0.05, 0.1, 0.15,
                                     0.2,  0.3,  0.5,  1.0};

  std::printf("=== Ablation: Equation 1 constant C ===\n");
  std::printf("Q(p) = C * [PR(t3)-PR(t1)]/PR(t1) + PR(t3); C=0 degenerates "
              "to current PageRank\n\n");

  qrank::TableWriter table(
      {"C", "mean err Q(p)", "mean err PR(t3)", "improvement", "err<0.1 %"});
  double best_c = -1.0, best_err = 1e9;
  double err_at_01 = 0.0, err_at_005 = 0.0, err_at_015 = 0.0;

  for (double c : sweep) {
    qrank::CrawlExperimentOptions options;
    options.simulator.seed = 77;  // independent of the headline seed
    options.estimator.relative_increase_weight = c;
    qrank::Result<qrank::CrawlExperimentResult> result =
        qrank::RunCrawlExperiment(options);
    if (!result.ok()) {
      std::fprintf(stderr, "C=%.2f failed: %s\n", c,
                   result.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    const auto& cmp = result->comparison;
    table.AddNumericRow({c, cmp.quality.mean_error, cmp.pagerank.mean_error,
                         cmp.improvement_factor,
                         cmp.quality.fraction_below_0_1 * 100.0},
                        4);
    if (cmp.quality.mean_error < best_err) {
      best_err = cmp.quality.mean_error;
      best_c = c;
    }
    if (c == 0.1) err_at_01 = cmp.quality.mean_error;
    if (c == 0.05) err_at_005 = cmp.quality.mean_error;
    if (c == 0.15) err_at_015 = cmp.quality.mean_error;
  }
  table.RenderAscii(std::cout);

  std::printf("\nbest C = %.2f (paper: 0.1)\n", best_c);
  bool optimum_near_01 = best_c >= 0.05 && best_c <= 0.2;
  bool flat_neighborhood =
      err_at_005 < 1.25 * err_at_01 && err_at_015 < 1.25 * err_at_01;
  if (optimum_near_01 && flat_neighborhood) {
    std::printf("PASS: optimum at/near C=0.1 with a flat neighborhood "
                "(footnote 6 reproduced)\n");
    return EXIT_SUCCESS;
  }
  std::printf("FAIL: C ablation does not match the paper's footnote 6\n");
  return EXIT_FAILURE;
}
