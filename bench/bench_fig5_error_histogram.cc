// Regenerates the Section 8 experiment: Figure 4 (snapshot timeline),
// Figure 5 (histogram of relative prediction errors) and the headline
// scalars ("average error 0.32 for Q(p) vs 0.78 for PR(p,t3)";
// "err < 0.1 for 62% vs 46%"; "err > 1 for 5% vs over 10%").
//
// The paper's substrate was four crawls of 154 real Web sites; ours is
// the web-evolution simulator implementing the paper's own
// user-visitation model (see DESIGN.md for the substitution argument).
// Absolute error magnitudes therefore differ — the simulated Web is
// cleaner than a 2003 crawl — but the paper's qualitative claims are
// asserted at the end of this binary: the quality estimator predicts the
// future PageRank better than the current PageRank, and C = 0.1 is the
// best constant (see bench_ablation_constant_c).

// Flags: --seed N (default 2003), --users N (default 1000),
//        --constant C (default 0.1), --forget R (default 0.08).

#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  qrank::FlagParser flags(argc, argv);
  qrank::CrawlExperimentOptions options;  // calibrated defaults
  options.simulator.seed = static_cast<uint64_t>(
      flags.GetInt("seed", 2003));  // default: the paper's crawl year
  options.simulator.num_users =
      static_cast<uint32_t>(flags.GetInt("users", 1000));
  options.estimator.relative_increase_weight =
      flags.GetDouble("constant", 0.1);
  options.simulator.forget_rate = flags.GetDouble("forget", 0.08);
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }

  std::printf("=== Figure 4: snapshot timeline ===\n");
  std::printf("observations at t1=%.0f, t2=%.0f, t3=%.0f; future at "
              "t4=%.0f (gap ratio 1:1:2; paper used ~1:1:4 months)\n\n",
              options.snapshot_times[0], options.snapshot_times[1],
              options.snapshot_times[2], options.snapshot_times[3]);

  qrank::Result<qrank::CrawlExperimentResult> result =
      qrank::RunCrawlExperiment(options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  const qrank::CrawlExperimentResult& r = *result;

  std::printf("simulated crawl: %u common pages (paper: 2.7M of 5M), "
              "%llu visit events, %llu links created\n",
              r.common_pages,
              static_cast<unsigned long long>(r.total_visits),
              static_cast<unsigned long long>(r.total_likes));
  std::printf("page trends over t1..t3: %llu rising, %llu falling, %llu "
              "oscillating (I:=0), %llu stable (<5%% change, excluded)\n\n",
              static_cast<unsigned long long>(r.estimate.num_rising),
              static_cast<unsigned long long>(r.estimate.num_falling),
              static_cast<unsigned long long>(r.estimate.num_oscillating),
              static_cast<unsigned long long>(r.estimate.num_stable));

  std::printf("=== Figure 5: relative error histograms ===\n");
  std::printf("%s\n", qrank::RenderComparison(r.comparison).c_str());

  std::printf("\n=== Ground truth (simulation-only extension) ===\n");
  std::printf("Spearman with true quality: Q(p) %.3f, PR(p,t3) %.3f\n",
              r.truth.spearman_quality_estimate,
              r.truth.spearman_current_pagerank);
  std::printf("precision@%llu vs true top quality: Q(p) %.2f, PR(p,t3) "
              "%.2f\n",
              static_cast<unsigned long long>(r.truth.top_k),
              r.truth.precision_at_k_quality_estimate,
              r.truth.precision_at_k_current_pagerank);

  // Assert the paper's qualitative claims hold in this run.
  bool ok = true;
  if (r.comparison.improvement_factor <= 1.0) {
    std::printf("\nFAIL: quality estimator did not beat current PageRank\n");
    ok = false;
  }
  if (r.comparison.quality.fraction_below_0_1 <
      r.comparison.pagerank.fraction_below_0_1) {
    std::printf("\nFAIL: lowest-error bin relation inverted\n");
    ok = false;
  }
  if (ok) {
    std::printf("\nPASS: Q(p) predicts the future PageRank better than "
                "PR(p,t3) (shape of Figure 5 reproduced)\n");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
