// Continuous-ingest benchmarks (google-benchmark): the freshness loop
// from edge arrival to servable TopK, measured on the 131k-page site
// graph (655 sites x 200 pages — the shape the serve suite uses).
//
// Suites:
//   BM_QueuePushPop        bounded MPMC queue throughput (1 producer
//                          timed, background consumer draining)
//   BM_BatchCoalesce       event -> net-GraphDelta coalescing rate at
//                          the default 4096-event flush boundary
//   BM_IngestPipeline      the whole loop, stop-and-wait: per iteration
//                          one 512-event burst is enqueued and the
//                          timer runs until every event's generation is
//                          published (ApplyDelta -> warm DeltaPageRank
//                          -> estimator -> bundle export -> ordered
//                          publish), while two reader threads hammer
//                          TopK against the same store. Counters carry
//                          the update-to-servable latency distribution
//                          (p50/p99/max ms) AND the per-stage
//                          apply/solve/estimate/export/publish
//                          breakdown from the service histograms.
//   BM_IngestStream_*      serial vs pipelined throughput under a
//                          window-2 closed-loop: burst N+2 is admitted
//                          only once burst N is servable, so two bursts
//                          are always in flight. The serial service
//                          pays solve+export per burst; the pipelined
//                          one overlaps burst N+1's solve with burst
//                          N's export (and parallelizes the export
//                          itself), so the per-burst real time drops
//                          toward max(solve, export) on multicore.
//
// With --check_ingest_regression the process exits non-zero unless the
// stop-and-wait row is present, ran under real concurrent query load,
// carries a per-stage breakdown, and its p99 update-to-servable latency
// sits inside the bounded-staleness SLO ceiling — plus, on hosts with
// >= 2 hardware threads, the pipelined stream row must beat the serial
// one by >= 1.5x on p99 update-to-servable (the headline claim of the
// pipelined rewrite). On single-core hosts the ratio is reported but
// not enforced: with one executor there is nothing to overlap, and
// failing the gate there would only measure the scheduler.
// A single-core Release run of the stop-and-wait row shows p50 ~320 ms
// / p99 ~580 ms per 512-event burst on the 131k workload; the 1 s
// ceiling leaves ~1.7x headroom for runner noise while still catching a
// broken incremental path (every batch falling back to a cold solve
// costs multiple seconds per generation).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "ingest/batch_accumulator.h"
#include "ingest/ingest_service.h"
#include "ingest/update_queue.h"
#include "serve/query_engine.h"
#include "serve/snapshot_store.h"

namespace {

using qrank::BatchAccumulator;
using qrank::BatchPolicy;
using qrank::CsrGraph;
using qrank::EdgeList;
using qrank::IngestOptions;
using qrank::IngestService;
using qrank::IngestStats;
using qrank::NodeId;
using qrank::QueryEngine;
using qrank::Rng;
using qrank::SiteId;
using qrank::SnapshotStore;
using qrank::TopKQuery;
using qrank::TopKScratch;
using qrank::UpdateEvent;
using qrank::UpdateQueue;
using qrank::UpdateQueueOptions;

constexpr NodeId kNumSites = 655;
constexpr NodeId kPagesPerSite = 200;  // 131k pages total
constexpr NodeId kNumPages = kNumSites * kPagesPerSite;
constexpr size_t kBurst = 512;  // events per timed pipeline iteration

const EdgeList& SeedEdges() {
  static const EdgeList* edges = [] {
    Rng rng(99);
    return new EdgeList(
        qrank::GenerateSiteClustered(kNumSites, kPagesPerSite, 12, 6, &rng)
            .value());
  }();
  return *edges;
}

// Crawler-shaped event mix: mostly discovered links, some removals
// drawn from the seed edge set (real structural deletes the first time
// they fire, ghost removes afterwards — both paths the coalescer
// handles), and a visit stream for the estimator side.
UpdateEvent NextEvent(Rng* rng, const EdgeList& seed) {
  const uint64_t roll = rng->NextUint64() % 100;
  if (roll < 55) {
    return UpdateEvent::AddEdge(
        static_cast<NodeId>(rng->NextUint64() % kNumPages),
        static_cast<NodeId>(rng->NextUint64() % kNumPages));
  }
  if (roll < 75) {
    const auto& e = seed.edges()[rng->NextUint64() % seed.num_edges()];
    return UpdateEvent::RemoveEdge(e.src, e.dst);
  }
  return UpdateEvent::Visit(
      static_cast<NodeId>(rng->NextUint64() % kNumPages));
}

// Bounded queue push/pop throughput: the timed thread produces, one
// background consumer drains in 1024-event batches. events/s is the
// accepted-push rate.
void BM_QueuePushPop(benchmark::State& state) {
  UpdateQueueOptions options;
  options.capacity = 1 << 13;
  UpdateQueue queue(options);
  std::thread consumer([&queue] {
    std::vector<UpdateEvent> buf;
    for (;;) {
      buf.clear();
      const size_t n =
          queue.PopBatch(1024, std::chrono::milliseconds(1), &buf);
      if (n == 0 && queue.closed() && queue.depth() == 0) break;
    }
  });
  NodeId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queue.Push(UpdateEvent::AddEdge(i, i + 1)).ok());
    ++i;
  }
  queue.Close();
  consumer.join();
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

// Coalescing rate through the default 4096-event flush boundary:
// absorb with queue-style sequence stamping, emit the net delta
// against a small base graph whenever the size policy fires.
void BM_BatchCoalesce(benchmark::State& state) {
  static const CsrGraph* base = [] {
    Rng rng(7);
    return new CsrGraph(
        CsrGraph::FromEdgeList(
            qrank::GenerateBarabasiAlbert(4096, 4, &rng).value())
            .value());
  }();
  BatchAccumulator accumulator{BatchPolicy{}};
  Rng rng(11);
  uint64_t sequence = 0;
  uint64_t flushes = 0;
  const auto now = std::chrono::steady_clock::now();
  for (auto _ : state) {
    UpdateEvent e = NextEvent(&rng, SeedEdges());
    e.sequence = ++sequence;
    e.enqueue_time = now;
    accumulator.Absorb(e);
    if (accumulator.num_events() >= accumulator.policy().max_events) {
      benchmark::DoNotOptimize(accumulator.Flush(*base).ok());
      ++flushes;
    }
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["flushes"] =
      benchmark::Counter(static_cast<double>(flushes));
}

// Per-stage latency breakdown as benchmark counters, straight from the
// service's stage histograms — what the regression gate reads and what
// `qrank_ingest drive` prints for operators.
void AddStageCounters(benchmark::State& state, const IngestStats& stats) {
  const struct {
    const char* name;
    const qrank::IngestStageStats& s;
  } stages[] = {
      {"apply", stats.stage_apply},     {"solve", stats.stage_solve},
      {"estimate", stats.stage_estimate}, {"export", stats.stage_export},
      {"publish", stats.stage_publish},
  };
  for (const auto& st : stages) {
    state.counters[std::string("stage_") + st.name + "_p50_ms"] =
        benchmark::Counter(st.s.p50_ms);
    state.counters[std::string("stage_") + st.name + "_p99_ms"] =
        benchmark::Counter(st.s.p99_ms);
  }
}

// The full freshness loop under concurrent query load. Each iteration
// is one burst: enqueue kBurst events, then block until the service has
// published the generation covering the last of them — so the per-
// iteration time IS the end-to-end freshness cost, and the service's
// own histogram gives the per-event update-to-servable distribution.
void BM_IngestPipeline(benchmark::State& state) {
  SnapshotStore store;
  IngestOptions options;
  options.queue.capacity = 1 << 14;
  options.batch.max_events = kBurst;  // one generation per burst
  options.batch.max_age = std::chrono::milliseconds(20);
  options.num_sites = kNumSites;
  options.site_of = [](NodeId page) {
    return static_cast<SiteId>(page / kPagesPerSite);
  };
  auto service =
      IngestService::Create(CsrGraph::FromEdgeList(SeedEdges()).value(),
                            &store, std::move(options));
  if (!service.ok() || !service.value()->Start().ok()) {
    state.SkipWithError("ingest service failed to start");
    return;
  }
  IngestService& ingest = *service.value();

  // Two readers keep TopK flowing against every generation the loop
  // publishes — the "while queries keep flowing" half of the contract.
  // Paced rather than busy-spinning: an unthrottled reader pair would
  // starve the consumer thread on small CI runners and the measurement
  // would be about scheduler contention, not pipeline freshness.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&store, &stop, &reads] {
      const QueryEngine engine(&store);
      TopKQuery q;
      q.k = 10;
      q.blend_alpha = 0.5;
      TopKScratch scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(engine.TopK(q, &scratch).ok());
        reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  Rng rng(2026);
  uint64_t last_sequence = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      if (!ingest.Enqueue(NextEvent(&rng, SeedEdges())).ok()) {
        state.SkipWithError("enqueue failed");
        break;
      }
    }
    last_sequence += kBurst;
    if (!ingest.WaitServable(last_sequence, std::chrono::seconds(120))) {
      state.SkipWithError("servability timeout");
      break;
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  if (!ingest.Stop().ok()) state.SkipWithError("ingest loop failed");

  const IngestStats stats = ingest.Stats();
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(kBurst),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p50_ms"] = benchmark::Counter(stats.latency_p50_ms);
  state.counters["p99_ms"] = benchmark::Counter(stats.latency_p99_ms);
  state.counters["max_ms"] = benchmark::Counter(stats.latency_max_ms);
  state.counters["generations"] =
      benchmark::Counter(static_cast<double>(stats.generations));
  state.counters["reads"] =
      benchmark::Counter(static_cast<double>(reads.load()));
  AddStageCounters(state, stats);
}

// Serial vs pipelined throughput under a window-2 closed loop: two
// bursts are always in flight (burst N+2 admitted once burst N is
// servable), so the pipelined service can overlap burst N+1's
// apply+solve with burst N's estimate+export+publish. The serial
// configuration runs the identical admission discipline with the
// inline export path and a single export thread — the pre-rewrite
// behavior — so the two rows isolate exactly the pipelining + parallel
// export win.
void RunIngestStream(benchmark::State& state, bool pipelined) {
  SnapshotStore store;
  IngestOptions options;
  options.pipelined = pipelined;
  // 0 = all cores for the pipelined row; the serial row pins the export
  // to one thread to reproduce the pre-rewrite inline path.
  options.export_parallel.num_threads = pipelined ? 0 : 1;
  options.queue.capacity = 1 << 14;
  options.batch.max_events = kBurst;
  options.batch.max_age = std::chrono::milliseconds(20);
  options.num_sites = kNumSites;
  options.site_of = [](NodeId page) {
    return static_cast<SiteId>(page / kPagesPerSite);
  };
  auto service =
      IngestService::Create(CsrGraph::FromEdgeList(SeedEdges()).value(),
                            &store, std::move(options));
  if (!service.ok() || !service.value()->Start().ok()) {
    state.SkipWithError("ingest service failed to start");
    return;
  }
  IngestService& ingest = *service.value();

  Rng rng(2026);
  uint64_t enqueued = 0;
  auto enqueue_burst = [&ingest, &rng, &enqueued]() {
    for (size_t i = 0; i < kBurst; ++i) {
      if (!ingest.Enqueue(NextEvent(&rng, SeedEdges())).ok()) return false;
    }
    enqueued += kBurst;
    return true;
  };
  // Prime the admission window: two bursts in flight before the first
  // timed wait, so the consumer always has the next burst ready while
  // the exporter works — the shape that exposes stage overlap.
  bool failed = false;
  if (!enqueue_burst() || !enqueue_burst()) {
    state.SkipWithError("enqueue failed");
    failed = true;
  }
  uint64_t servable = 0;
  for (auto _ : state) {
    if (failed) break;
    servable += kBurst;
    if (!ingest.WaitServable(servable, std::chrono::seconds(120))) {
      state.SkipWithError("servability timeout");
      break;
    }
    if (!enqueue_burst()) {
      state.SkipWithError("enqueue failed");
      break;
    }
  }
  // Drain the tail the window still holds before reading final stats.
  if (!failed && !ingest.WaitServable(enqueued, std::chrono::seconds(120))) {
    state.SkipWithError("drain timeout");
  }
  if (!ingest.Stop().ok()) state.SkipWithError("ingest loop failed");

  const IngestStats stats = ingest.Stats();
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(kBurst),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p50_ms"] = benchmark::Counter(stats.latency_p50_ms);
  state.counters["p99_ms"] = benchmark::Counter(stats.latency_p99_ms);
  state.counters["max_ms"] = benchmark::Counter(stats.latency_max_ms);
  state.counters["generations"] =
      benchmark::Counter(static_cast<double>(stats.generations));
  AddStageCounters(state, stats);
}

void BM_IngestStreamSerial(benchmark::State& state) {
  RunIngestStream(state, /*pipelined=*/false);
}

void BM_IngestStreamPipelined(benchmark::State& state) {
  RunIngestStream(state, /*pipelined=*/true);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("BM_QueuePushPop", BM_QueuePushPop)
      ->Unit(benchmark::kMicrosecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_BatchCoalesce", BM_BatchCoalesce)
      ->Unit(benchmark::kMicrosecond)
      ->UseRealTime();
  // Fixed iteration count: the service (with its cold initial solve)
  // is built once, and the run length is deterministic regardless of
  // how fast the incremental path happens to be.
  benchmark::RegisterBenchmark("BM_IngestPipeline", BM_IngestPipeline)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime()
      ->Iterations(24);
  for (const auto& [name, fn] :
       {std::pair<const char*, void (*)(benchmark::State&)>{
            "BM_IngestStream_serial", BM_IngestStreamSerial},
        {"BM_IngestStream_pipelined", BM_IngestStreamPipelined}}) {
    benchmark::RegisterBenchmark(name, fn)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->Iterations(16);
  }
}

// CI smoke gate, two halves:
//
//  1. Bounded-staleness SLO: p99 update-to-servable on the stop-and-wait
//     row must exist, be a real measurement (> 0, with the reader
//     threads actually querying concurrently, with a per-stage
//     breakdown recorded), and sit under the 1 s ceiling — tightened
//     from the pre-pipeline 2 s now that the export path is off the
//     solve's critical path. A cold-solve-per-batch regression (seconds
//     per generation) still trips it with margin.
//
//  2. Pipelining win: on hosts with >= 2 hardware threads, the
//     pipelined stream row must cut p99 update-to-servable by >= 1.5x
//     vs the serial row under the same window-2 closed loop. On a
//     single core there is nothing to overlap, so the ratio is printed
//     for the record but not enforced.
int CheckIngestRegression(const std::vector<qrank_bench::BenchRow>& rows) {
  constexpr double kMaxP99Ms = 1000.0;
  constexpr double kMinStreamSpeedup = 1.5;
  const qrank_bench::BenchRow* pipeline = nullptr;
  const qrank_bench::BenchRow* serial = nullptr;
  const qrank_bench::BenchRow* pipelined = nullptr;
  for (const qrank_bench::BenchRow& r : rows) {
    if (r.name.rfind("BM_IngestPipeline", 0) == 0) pipeline = &r;
    if (r.name.rfind("BM_IngestStream_serial", 0) == 0) serial = &r;
    if (r.name.rfind("BM_IngestStream_pipelined", 0) == 0) pipelined = &r;
  }
  if (pipeline == nullptr) {
    std::fprintf(stderr, "ingest gate FAILED: BM_IngestPipeline missing\n");
    return 1;
  }
  const double p99 = pipeline->Counter("p99_ms");
  if (p99 <= 0.0 || p99 > kMaxP99Ms) {
    std::fprintf(stderr,
                 "ingest gate FAILED: p99 update-to-servable %.3f ms "
                 "outside (0, %.0f] ms\n",
                 p99, kMaxP99Ms);
    return 1;
  }
  if (pipeline->Counter("generations") <= 0.0 ||
      pipeline->Counter("reads") <= 0.0) {
    std::fprintf(stderr,
                 "ingest gate FAILED: pipeline ran without publishes or "
                 "without concurrent query load\n");
    return 1;
  }
  // The per-stage breakdown must be a real measurement: the stages that
  // do heavy work on the 131k workload cannot be zero. (apply/publish
  // can legitimately round to ~0 and are only reported.)
  for (const char* stage : {"stage_solve_p50_ms", "stage_estimate_p50_ms",
                            "stage_export_p50_ms"}) {
    if (pipeline->Counter(stage) <= 0.0) {
      std::fprintf(stderr,
                   "ingest gate FAILED: per-stage breakdown missing or "
                   "empty (%s)\n",
                   stage);
      return 1;
    }
  }
  std::printf(
      "ingest gate: p99 update-to-servable %.3f ms (p50 %.3f, max %.3f) "
      "over %g generations with %g concurrent reads\n"
      "  stages p50 ms: apply %.3f solve %.3f estimate %.3f export %.3f "
      "publish %.3f\n",
      p99, pipeline->Counter("p50_ms"), pipeline->Counter("max_ms"),
      pipeline->Counter("generations"), pipeline->Counter("reads"),
      pipeline->Counter("stage_apply_p50_ms"),
      pipeline->Counter("stage_solve_p50_ms"),
      pipeline->Counter("stage_estimate_p50_ms"),
      pipeline->Counter("stage_export_p50_ms"),
      pipeline->Counter("stage_publish_p50_ms"));

  if (serial == nullptr || pipelined == nullptr) {
    std::fprintf(stderr,
                 "ingest gate FAILED: BM_IngestStream serial/pipelined "
                 "rows missing\n");
    return 1;
  }
  const double serial_p99 = serial->Counter("p99_ms");
  const double pipelined_p99 = pipelined->Counter("p99_ms");
  if (serial_p99 <= 0.0 || pipelined_p99 <= 0.0) {
    std::fprintf(stderr,
                 "ingest gate FAILED: stream rows carry no latency "
                 "measurement\n");
    return 1;
  }
  const double speedup = serial_p99 / pipelined_p99;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "ingest gate: stream p99 serial %.3f ms vs pipelined %.3f ms "
      "(%.2fx, per-burst real %.3f vs %.3f ms) on %u hardware threads\n",
      serial_p99, pipelined_p99, speedup, serial->real_ms, pipelined->real_ms,
      hw);
  if (hw >= 2 && speedup < kMinStreamSpeedup) {
    std::fprintf(stderr,
                 "ingest gate FAILED: pipelined stream p99 speedup %.2fx "
                 "< %.1fx on a %u-thread host\n",
                 speedup, kMinStreamSpeedup, hw);
    return 1;
  }
  if (hw < 2) {
    std::printf(
        "ingest gate: single hardware thread — %.1fx speedup check "
        "reported but not enforced (nothing to overlap)\n",
        kMinStreamSpeedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_gate = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--check_ingest_regression") {
      check_gate = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  RegisterAll();
  std::function<int(const std::vector<qrank_bench::BenchRow>&)> after;
  if (check_gate) after = CheckIngestRegression;
  return qrank_bench::BenchMain(static_cast<int>(args.size()), args.data(),
                                "ingest", after);
}
